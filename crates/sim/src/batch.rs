//! Batched multi-configuration simulation: one trace pass, N timing
//! lanes.
//!
//! `BuildRBFmodel` pays the dominant share of its wall time running the
//! cycle-level simulator once per sampled design point — over the *same*
//! synthetic instruction stream every time. [`BatchProcessor`] amortizes
//! that stream: the trace is materialized once per chunk into a shared
//! window, the (configuration-independent) branch-prediction outcomes
//! are computed once, and N per-configuration timing lanes consume the
//! window in lockstep chunks.
//!
//! # The shared-trace invariant
//!
//! Batching is sound because two streams are *lane-invariant*:
//!
//! * **The instruction stream.** A [`TraceSource`] is a pure function of
//!   the workload (benchmark, seed), never of the processor
//!   configuration — the property the surrogate-modeling methodology
//!   already requires. Every lane therefore fetches the identical
//!   instruction sequence, so `seq` equals the absolute trace index in
//!   every lane.
//! * **The branch-prediction outcomes.** All predictor parameters live
//!   in [`FixedMachine`], which [`BatchProcessor::new`] requires to be
//!   identical across lanes. The predictor is consulted once per branch,
//!   at fetch, in trace order — so its internal state evolution (and
//!   hence each branch's mispredicted flag) depends only on the trace.
//!   One shared [`BranchPredictor`] computes the flag stream as
//!   instructions enter the window.
//!
//! A third stream is *almost* lane-invariant: each load's forwarding
//! source. The youngest older store to the same word is a pure trace
//! property, precomputed once per window slot by the shared pass; the
//! per-lane residue is a single `>= head_seq` liveness check, which
//! reproduces exactly when the serial engine's store map would still
//! hold that store (the map only drops an entry when its youngest
//! store commits).
//!
//! Everything else *may* diverge per lane and is therefore lane-local:
//! all timing state (cycle counter, ROB/IQ/LSQ occupancy, ready and
//! completion structures, fetch gates), the entire cache hierarchy and
//! DRAM model (capacities are design parameters, and access *timing*
//! feeds back into bank/bus/MSHR contention), and the statistics.
//!
//! # Structure-of-arrays lanes
//!
//! Lane state lives in [`Lanes`]: one `Vec` per scalar (cycle counter,
//! queue occupancies, fetch gates) and one `Vec` per container (ROB,
//! fetch queue, heaps), indexed by lane. The hot kernel borrows a
//! [`LaneView`] of one lane — a struct of disjoint `&mut` into the
//! arrays — so the cycle loop runs on direct references while the
//! storage stays columnar.
//!
//! # Chunk-major scheduling and the window barrier
//!
//! The window holds up to two chunks of instructions. Each lane runs
//! cycles until its fetch position passes the first chunk's end (a fetch
//! group may overshoot by at most `width` instructions — which is why
//! the *second* chunk is already materialized), then pauses. When every
//! lane has passed the barrier, the front chunk is dropped and one more
//! is pulled from the generator. Once the generator is exhausted, lanes
//! run to completion unconstrained.
//!
//! Lanes additionally *skip* provable no-op cycles (nothing completing,
//! committing, issuing, dispatching, or fetching) in one jump, charging
//! the skipped span to the statistics — ROB occupancy integral and
//! exactly the stall counter the serial engine would have bumped — so
//! [`SimStats`] stay byte-identical to N serial [`Processor`] runs while
//! high-CPI idle spans cost O(1).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};

use crate::pipeline::{class_of, record_run_telemetry, EntryState};
use crate::{BranchPredictor, ConfigError, Hierarchy, Instr, Op, SimConfig, SimStats, TraceSource};

/// Instructions per shared chunk. Two chunks are resident at once, so
/// the window's working set stays well under a megabyte while the
/// per-chunk bookkeeping amortizes to noise.
const CHUNK: usize = 16_384;

/// Errors from assembling a batch.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BatchError {
    /// No configurations were supplied.
    Empty,
    /// A configuration failed [`SimConfig::validate`].
    InvalidConfig {
        /// Index of the offending configuration.
        index: usize,
        /// The underlying validation error.
        error: ConfigError,
    },
    /// A configuration's [`FixedMachine`](crate::FixedMachine) differs
    /// from lane 0's. The shared trace pass computes branch-prediction
    /// outcomes once, which is only sound when the predictor (and the
    /// rest of the fixed machine) is identical across lanes.
    HeterogeneousFixedMachine {
        /// Index of the first configuration that differs.
        index: usize,
    },
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatchError::Empty => write!(f, "batch needs at least one configuration"),
            BatchError::InvalidConfig { index, error } => {
                write!(f, "configuration {index} is invalid: {error}")
            }
            BatchError::HeterogeneousFixedMachine { index } => write!(
                f,
                "configuration {index} has a different fixed machine than lane 0; \
                 batching shares one branch-prediction pass and requires identical \
                 fixed machines"
            ),
        }
    }
}

impl std::error::Error for BatchError {}

/// Runs N processor configurations over one shared trace pass.
///
/// # Examples
///
/// ```
/// use ppm_sim::{BatchProcessor, Processor, SimConfig, Instr, Op};
///
/// let configs: Vec<SimConfig> = [24u32, 96]
///     .iter()
///     .map(|&rob| SimConfig::builder().rob_size(rob).build().unwrap())
///     .collect();
/// let trace = || (0..2_000).map(|i| Instr::alu(Op::IntAlu, 0x1000 + (i % 128) * 4, 1, 0));
///
/// let batched = BatchProcessor::new(configs.clone()).unwrap().run(trace());
/// for (stats, config) in batched.iter().zip(configs) {
///     // Byte-identical to a serial run of the same configuration.
///     assert_eq!(*stats, Processor::new(config).run(trace()));
/// }
/// ```
#[derive(Debug)]
pub struct BatchProcessor {
    configs: Vec<SimConfig>,
}

impl BatchProcessor {
    /// Assembles a batch, validating every configuration and requiring
    /// one shared fixed machine.
    ///
    /// # Errors
    ///
    /// See [`BatchError`].
    pub fn new(configs: Vec<SimConfig>) -> Result<Self, BatchError> {
        if configs.is_empty() {
            return Err(BatchError::Empty);
        }
        for (index, config) in configs.iter().enumerate() {
            config
                .validate()
                .map_err(|error| BatchError::InvalidConfig { index, error })?;
            if config.fixed != configs[0].fixed {
                return Err(BatchError::HeterogeneousFixedMachine { index });
            }
        }
        Ok(BatchProcessor { configs })
    }

    /// The number of timing lanes.
    pub fn lanes(&self) -> usize {
        self.configs.len()
    }

    /// Runs every lane over one pass of the trace and returns one
    /// [`SimStats`] per configuration, in input order — byte-identical
    /// to running [`Processor::run`](crate::Processor::run) per
    /// configuration on the same trace.
    ///
    /// Bound the run length with `trace.take(n)`.
    pub fn run(self, trace: impl TraceSource) -> Vec<SimStats> {
        ppm_telemetry::counter("sim.batch_runs").inc();
        ppm_telemetry::counter("sim.batch_lanes").add(self.configs.len() as u64);
        let mut kernel = Kernel::new(&self.configs);
        kernel.run(trace);
        kernel.finalize()
    }
}

/// Which structural stall the serial dispatch stage would charge each
/// cycle of a skipped span.
#[derive(Clone, Copy)]
enum Stall {
    Rob,
    Iq,
    Lsq,
}

/// FNV-1a with a multiply-xorshift fast path for `u64` keys.
///
/// The store map is keyed by word address and only ever used through
/// `get`/`insert`/`remove` — never iterated — so its hash function
/// cannot influence timing statistics, and the default SipHash is pure
/// per-instruction overhead in the batch kernel.
#[derive(Default)]
struct WordHasher(u64);

impl Hasher for WordHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u64(&mut self, word: u64) {
        let h = word.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        self.0 = h ^ (h >> 32);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

type StoreMap = HashMap<u64, u64, BuildHasherDefault<WordHasher>>;

/// Number of fixed-latency completion classes (single-cycle, integer
/// multiply, FP add, FP multiply, L1-latency loads).
const FIXED_DELAYS: usize = 5;

/// Pending execution completions, split by latency class.
///
/// Completions with a *fixed* latency K are pushed as `now + K` with
/// `now` nondecreasing, so each class's queue is already sorted — a
/// `VecDeque` replaces heap discipline for the overwhelming majority of
/// instructions. Only variable-latency completions (cache-missing
/// loads) go through a real heap.
///
/// Same-cycle entries may interleave across queues, so [`Self::pop_due`]
/// does not define an order *within* a cycle. That is safe: processing
/// order within one `process_completions` call is outcome-independent —
/// marking Done, decrementing `pending_deps`, and pushing to the
/// (seq-ordered) ready heap all commute, and the fetch-restart update
/// depends only on the current cycle, not the pop order.
struct CompletionSet {
    /// One sorted `(done_cycle, seq)` queue per fixed latency class.
    lines: [VecDeque<(u64, u64)>; FIXED_DELAYS],
    /// The latency each line holds, used to route pushes by delay.
    delays: [u64; FIXED_DELAYS],
    /// Variable-latency completions.
    heap: BinaryHeap<Reverse<(u64, u64)>>,
    /// Bit `i` set iff `lines[i]` is non-empty; bit `FIXED_DELAYS` for
    /// the heap. Drains visit only live structures.
    live: u8,
    /// Exact earliest pending cycle (`u64::MAX` when empty), so the
    /// per-step due-check is O(1). Pushes maintain it directly;
    /// [`Self::drain_due`] recomputes it.
    min: u64,
}

impl CompletionSet {
    fn new(delays: [u64; FIXED_DELAYS]) -> Self {
        CompletionSet {
            lines: Default::default(),
            delays,
            heap: BinaryHeap::new(),
            live: 0,
            min: u64::MAX,
        }
    }

    fn push(&mut self, now: u64, done_cycle: u64, seq: u64) {
        self.min = self.min.min(done_cycle);
        let delay = done_cycle - now;
        for (i, (line, &d)) in self.lines.iter_mut().zip(&self.delays).enumerate() {
            if delay == d {
                line.push_back((done_cycle, seq));
                self.live |= 1 << i;
                return;
            }
        }
        self.heap.push(Reverse((done_cycle, seq)));
        self.live |= 1 << FIXED_DELAYS;
    }

    /// The earliest pending completion cycle (`u64::MAX` when empty).
    fn min_cycle(&self) -> u64 {
        self.min
    }

    /// Drains every completion with `done_cycle <= now` into `out` (no
    /// intra-cycle order; see the type docs for why that is sound) and
    /// recomputes the cached minimum, in one pass over the live
    /// structures.
    fn drain_due(&mut self, now: u64, out: &mut Vec<u64>) {
        let mut min = u64::MAX;
        let mut pending = self.live;
        while pending != 0 {
            let i = pending.trailing_zeros() as usize;
            pending &= pending - 1;
            if i < FIXED_DELAYS {
                let line = &mut self.lines[i];
                while let Some(&(cycle, seq)) = line.front() {
                    if cycle > now {
                        min = min.min(cycle);
                        break;
                    }
                    out.push(seq);
                    line.pop_front();
                }
                if line.is_empty() {
                    self.live &= !(1 << i);
                }
            } else {
                while let Some(&Reverse((cycle, seq))) = self.heap.peek() {
                    if cycle > now {
                        min = min.min(cycle);
                        break;
                    }
                    out.push(seq);
                    self.heap.pop();
                }
                if self.heap.is_empty() {
                    self.live &= !(1 << FIXED_DELAYS);
                }
            }
        }
        self.min = min;
    }
}

/// One in-flight instruction's hot scheduling state — 32 bytes, two per
/// cache line. Unlike the serial engine's ROB entry this does not carry
/// the [`Instr`]: the shared window keeps every in-flight instruction
/// resident, so the stages re-read it by absolute index instead.
#[derive(Clone, Copy)]
struct Slot {
    seq: u64,
    done_cycle: u64,
    /// Forwarding-source store seq for loads, `u64::MAX` for none.
    fwd_src: u64,
    state: EntryState,
    pending_deps: u8,
}

const VACANT: Slot = Slot {
    seq: u64::MAX,
    done_cycle: 0,
    fwd_src: u64::MAX,
    state: EntryState::Done,
    pending_deps: 0,
};

/// The reorder buffer as a power-of-two ring addressed directly by
/// sequence number: the slot for `seq` is `slots[seq & mask]`, unique
/// because at most `rob_size <= capacity` instructions are in flight.
///
/// Slots are permanent — commit advances the head without moving them —
/// and the waiter lists live in a parallel array (they are cold next to
/// the scheduling fields), each vector staying resident for the next
/// instruction that lands on its slot, so steady-state dispatch
/// allocates nothing.
struct Rob {
    slots: Vec<Slot>,
    waiters: Vec<Vec<u64>>,
    mask: u64,
    len: usize,
}

impl Rob {
    fn new(rob_size: usize) -> Self {
        let cap = rob_size.next_power_of_two();
        Rob {
            slots: vec![VACANT; cap],
            waiters: (0..cap).map(|_| Vec::new()).collect(),
            mask: cap as u64 - 1,
            len: 0,
        }
    }

    fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn len(&self) -> usize {
        self.len
    }

    fn contains(&self, head_seq: u64, seq: u64) -> bool {
        seq >= head_seq && seq < head_seq + self.len as u64
    }

    /// The slot for `seq`, without checking liveness — callers must
    /// know `seq` is in flight.
    fn slot_mut(&mut self, seq: u64) -> &mut Slot {
        &mut self.slots[(seq & self.mask) as usize]
    }

    fn get(&self, head_seq: u64, seq: u64) -> Option<&Slot> {
        self.contains(head_seq, seq)
            .then(|| &self.slots[(seq & self.mask) as usize])
    }

    fn front(&self, head_seq: u64) -> Option<&Slot> {
        self.get(head_seq, head_seq)
    }
}

/// The set of ready-to-issue instructions as a bitset over ROB slots
/// (same `seq & mask` addressing as [`Rob`]).
///
/// Insert and remove are single bit operations; issue scans the words
/// in sequence order from the head, so selection is oldest-first like
/// the serial engine's min-heap — and quota-deferred entries simply
/// stay set, with no pop-and-repush churn.
struct ReadySet {
    words: Vec<u64>,
    mask: u64,
    count: usize,
}

impl ReadySet {
    fn new(cap: usize) -> Self {
        ReadySet {
            words: vec![0; cap.div_ceil(64)],
            mask: cap as u64 - 1,
            count: 0,
        }
    }

    fn is_empty(&self) -> bool {
        self.count == 0
    }

    fn insert(&mut self, seq: u64) {
        let p = (seq & self.mask) as usize;
        debug_assert_eq!(self.words[p >> 6] & (1 << (p & 63)), 0);
        self.words[p >> 6] |= 1 << (p & 63);
        self.count += 1;
    }

    fn remove(&mut self, seq: u64) {
        let p = (seq & self.mask) as usize;
        debug_assert_ne!(self.words[p >> 6] & (1 << (p & 63)), 0);
        self.words[p >> 6] &= !(1 << (p & 63));
        self.count -= 1;
    }
}

/// A fetched instruction waiting to dispatch. Unlike the serial
/// engine's fetch-queue entry this does not carry the [`Instr`] itself:
/// the kernel keeps the previous chunk resident in the shared window
/// precisely so in-flight front-end entries can re-read their
/// instruction (and forwarding source) by absolute index at dispatch.
#[derive(Clone, Copy)]
struct Fetched {
    seq: u64,
    rename_ready: u64,
}

/// One lane's hot scalar state, copied into registers/stack for the
/// duration of a chunk run and written back after (see
/// [`Lanes::view`] / [`Lanes::store`]). Keeping these by value lets the
/// per-cycle loop touch them without pointer chasing.
#[derive(Clone, Copy)]
struct LaneScalars {
    now: u64,
    head_seq: u64,
    iq_count: usize,
    lsq_count: usize,
    fetch_blocked_on: Option<u64>,
    fetch_available: u64,
    last_fetch_line: u64,
    /// Next trace index this lane fetches; equals the lane's `next_seq`.
    pos: usize,
    /// Cycles actually stepped (as opposed to skipped); the
    /// `sim.batch_cycles_executed` diagnostic.
    executed: u64,
}

/// Per-lane state, stored column-wise: scalars in one dense array,
/// containers in one array per kind.
struct Lanes {
    scalars: Vec<LaneScalars>,
    done: Vec<bool>,
    // Derived per-lane parameters (design-point dependent).
    rob_size: Vec<usize>,
    iq_size: Vec<usize>,
    lsq_size: Vec<usize>,
    front_depth: Vec<u64>,
    fq_capacity: Vec<usize>,
    dl1_lat: Vec<u64>,
    // Containers.
    rob: Vec<Rob>,
    fetch_queue: Vec<VecDeque<Fetched>>,
    ready: Vec<ReadySet>,
    completions: Vec<CompletionSet>,
    hierarchy: Vec<Hierarchy>,
    stats: Vec<SimStats>,
    /// Retired-instruction tallies indexed by `Op` discriminant; folded
    /// into the named [`SimStats`] fields at finalize so commit charges
    /// one unconditional array increment instead of a seven-way branch.
    op_counts: Vec<[u64; 7]>,
    /// Reusable scratch for the seqs completing this cycle.
    due: Vec<Vec<u64>>,
}

/// One lane's working state for the hot kernel: scalars *by value*
/// (copied in by [`Lanes::view`], copied out by [`Lanes::store`]) plus
/// disjoint mutable borrows of the lane's containers.
struct LaneView<'a> {
    s: LaneScalars,
    rob_size: usize,
    iq_size: usize,
    lsq_size: usize,
    front_depth: u64,
    fq_capacity: usize,
    dl1_lat: u64,
    rob: &'a mut Rob,
    fetch_queue: &'a mut VecDeque<Fetched>,
    ready: &'a mut ReadySet,
    completions: &'a mut CompletionSet,
    hierarchy: &'a mut Hierarchy,
    stats: &'a mut SimStats,
    op_counts: &'a mut [u64; 7],
    due: &'a mut Vec<u64>,
}

impl Lanes {
    fn new(configs: &[SimConfig]) -> Self {
        let n = configs.len();
        Lanes {
            scalars: vec![
                LaneScalars {
                    now: 0,
                    head_seq: 0,
                    iq_count: 0,
                    lsq_count: 0,
                    fetch_blocked_on: None,
                    fetch_available: 0,
                    last_fetch_line: u64::MAX,
                    pos: 0,
                    executed: 0,
                };
                n
            ],
            done: vec![false; n],
            rob_size: configs.iter().map(|c| c.rob_size as usize).collect(),
            iq_size: configs.iter().map(|c| c.iq_size() as usize).collect(),
            lsq_size: configs.iter().map(|c| c.lsq_size() as usize).collect(),
            front_depth: configs.iter().map(|c| c.front_depth() as u64).collect(),
            fq_capacity: configs
                .iter()
                .map(|c| (c.front_depth() as usize + 4) * c.fixed.width as usize)
                .collect(),
            dl1_lat: configs.iter().map(|c| c.dl1_lat as u64).collect(),
            rob: configs
                .iter()
                .map(|c| Rob::new(c.rob_size as usize))
                .collect(),
            fetch_queue: (0..n).map(|_| VecDeque::new()).collect(),
            ready: configs
                .iter()
                .map(|c| ReadySet::new((c.rob_size as usize).next_power_of_two()))
                .collect(),
            completions: configs
                .iter()
                .map(|c| {
                    CompletionSet::new([
                        1,
                        c.fixed.int_mul_lat as u64,
                        c.fixed.fp_alu_lat as u64,
                        c.fixed.fp_mul_lat as u64,
                        c.dl1_lat as u64,
                    ])
                })
                .collect(),
            hierarchy: configs.iter().map(Hierarchy::new).collect(),
            stats: vec![SimStats::default(); n],
            op_counts: vec![[0; 7]; n],
            due: (0..n).map(|_| Vec::new()).collect(),
        }
    }

    fn view(&mut self, l: usize) -> LaneView<'_> {
        LaneView {
            s: self.scalars[l],
            rob_size: self.rob_size[l],
            iq_size: self.iq_size[l],
            lsq_size: self.lsq_size[l],
            front_depth: self.front_depth[l],
            fq_capacity: self.fq_capacity[l],
            dl1_lat: self.dl1_lat[l],
            rob: &mut self.rob[l],
            fetch_queue: &mut self.fetch_queue[l],
            ready: &mut self.ready[l],
            completions: &mut self.completions[l],
            hierarchy: &mut self.hierarchy[l],
            stats: &mut self.stats[l],
            op_counts: &mut self.op_counts[l],
            due: &mut self.due[l],
        }
    }

    /// Writes a view's scalar state back to the lane columns.
    fn store(&mut self, l: usize, s: LaneScalars) {
        self.scalars[l] = s;
    }
}

/// Parameters identical across lanes (all from the shared
/// [`FixedMachine`](crate::FixedMachine)).
struct Shared {
    width: usize,
    line_bits: u32,
    quotas: [u32; 5],
    int_mul_lat: u64,
    fp_alu_lat: u64,
    fp_mul_lat: u64,
}

/// The batched execution kernel: the shared window plus all lanes.
struct Kernel {
    lanes: Lanes,
    shared: Shared,
    /// One branch predictor for all lanes; see the module docs for why
    /// its outcomes are lane-invariant.
    bpred: BranchPredictor,
    /// The resident instruction window (up to two chunks).
    window: Vec<Instr>,
    /// Per-window-slot branch mispredict flags (false for non-branches).
    flags: Vec<bool>,
    /// Per-window-slot forwarding source: the youngest older store to
    /// the same word for loads, `u64::MAX` otherwise.
    fwd: Vec<u64>,
    /// Word address -> youngest store seq seen so far in the shared
    /// pass; feeds `fwd`.
    store_last: StoreMap,
    /// Absolute trace index of `window[0]`.
    win_start: usize,
    /// Absolute trace index of the current chunk's first instruction.
    /// The window keeps the *previous* chunk resident too, so fetch
    /// queues (bounded well below a chunk) can re-read instructions at
    /// dispatch after the barrier slides.
    cur_start: usize,
    /// The generator returned `None`; `win_start + window.len()` is the
    /// final trace length.
    exhausted: bool,
}

/// The shared window's parallel columns, borrowed together for the
/// per-lane kernel functions.
struct Window<'w> {
    instrs: &'w [Instr],
    flags: &'w [bool],
    fwd: &'w [u64],
    /// Absolute trace index of `instrs[0]`.
    start: usize,
}

impl Kernel {
    fn new(configs: &[SimConfig]) -> Self {
        let fixed = &configs[0].fixed;
        Kernel {
            lanes: Lanes::new(configs),
            shared: Shared {
                width: fixed.width as usize,
                line_bits: fixed.line_size.trailing_zeros(),
                quotas: [
                    fixed.int_alus,
                    fixed.int_muls,
                    fixed.fp_alus,
                    fixed.fp_muls,
                    fixed.mem_ports,
                ],
                int_mul_lat: fixed.int_mul_lat as u64,
                fp_alu_lat: fixed.fp_alu_lat as u64,
                fp_mul_lat: fixed.fp_mul_lat as u64,
            },
            bpred: BranchPredictor::with_kind(
                fixed.predictor,
                fixed.gshare_entries,
                fixed.gshare_history,
                fixed.btb_entries,
            ),
            window: Vec::with_capacity(3 * CHUNK),
            flags: Vec::with_capacity(3 * CHUNK),
            fwd: Vec::with_capacity(3 * CHUNK),
            store_last: StoreMap::default(),
            win_start: 0,
            cur_start: 0,
            exhausted: false,
        }
    }

    /// Pulls instructions until the window covers the current chunk
    /// plus one lookahead chunk (fetch groups overshoot the barrier by
    /// at most `width`), computing each branch's shared mispredict flag
    /// and each load's forwarding source as it enters.
    fn refill(&mut self, trace: &mut impl TraceSource) {
        let target = self.cur_start - self.win_start + 2 * CHUNK;
        while self.window.len() < target {
            let Some(instr) = trace.next() else {
                self.exhausted = true;
                break;
            };
            let flag = instr.op == Op::Branch
                && self
                    .bpred
                    .predict_kind(instr.kind, instr.pc, instr.taken, instr.target);
            let fwd = match instr.op {
                Op::Load => self
                    .store_last
                    .get(&(instr.mem_addr >> 3))
                    .copied()
                    .unwrap_or(u64::MAX),
                Op::Store => {
                    let seq = (self.win_start + self.window.len()) as u64;
                    self.store_last.insert(instr.mem_addr >> 3, seq);
                    u64::MAX
                }
                _ => u64::MAX,
            };
            self.window.push(instr);
            self.flags.push(flag);
            self.fwd.push(fwd);
        }
    }

    fn run(&mut self, trace: impl TraceSource) {
        let mut trace = trace;
        self.refill(&mut trace);
        let lane_count = self.lanes.scalars.len();
        loop {
            let window = Window {
                instrs: &self.window,
                flags: &self.flags,
                fwd: &self.fwd,
                start: self.win_start,
            };
            if self.exhausted {
                // Drain: the window is the whole remaining trace.
                let total = self.win_start + self.window.len();
                for l in 0..lane_count {
                    if self.lanes.done[l] {
                        continue;
                    }
                    let mut lane = self.lanes.view(l);
                    while !(lane.s.pos == total
                        && lane.rob.is_empty()
                        && lane.fetch_queue.is_empty())
                    {
                        step(&mut lane, &self.shared, &window);
                    }
                    let s = lane.s;
                    self.lanes.store(l, s);
                    self.lanes.done[l] = true;
                }
                return;
            }
            // Chunked phase: run every lane up to the barrier, then
            // slide. The chunk before the current one stays resident
            // for in-flight fetch-queue entries; older ones drop.
            let limit = self.cur_start + CHUNK;
            for l in 0..lane_count {
                let mut lane = self.lanes.view(l);
                while lane.s.pos < limit {
                    step(&mut lane, &self.shared, &window);
                }
                let s = lane.s;
                self.lanes.store(l, s);
            }
            self.cur_start = limit;
            if self.cur_start - self.win_start >= 2 * CHUNK {
                self.window.drain(..CHUNK);
                self.flags.drain(..CHUNK);
                self.fwd.drain(..CHUNK);
                self.win_start += CHUNK;
            }
            self.refill(&mut trace);
        }
    }

    fn finalize(mut self) -> Vec<SimStats> {
        for l in 0..self.lanes.scalars.len() {
            let stats = &mut self.lanes.stats[l];
            let counts = self.lanes.op_counts[l];
            stats.int_ops = counts[Op::IntAlu as usize];
            stats.mul_ops = counts[Op::IntMul as usize];
            stats.fp_ops = counts[Op::FpAlu as usize];
            stats.fp_mul_ops = counts[Op::FpMul as usize];
            stats.loads = counts[Op::Load as usize];
            stats.stores = counts[Op::Store as usize];
            stats.branches = counts[Op::Branch as usize];
            stats.instructions = counts.iter().sum();
            stats.cycles = self.lanes.scalars[l].now;
            stats.il1 = self.lanes.hierarchy[l].il1().stats();
            stats.dl1 = self.lanes.hierarchy[l].dl1().stats();
            stats.l2 = self.lanes.hierarchy[l].l2().stats();
            stats.dram_accesses = self.lanes.hierarchy[l].memory().dram_accesses;
            stats.mshr_wait_cycles = self.lanes.hierarchy[l].memory().mshr_wait_cycles;
            // Every lane fetches every branch exactly once, so the
            // shared predictor's total is each lane's total.
            stats.mispredicts = self.bpred.mispredictions;
            record_run_telemetry(stats);
        }
        // Skip-effectiveness diagnostics: how many simulated cycles were
        // actually stepped versus jumped over.
        let executed: u64 = self.lanes.scalars.iter().map(|s| s.executed).sum();
        let total: u64 = self.lanes.scalars.iter().map(|s| s.now).sum();
        ppm_telemetry::counter("sim.batch_cycles_executed").add(executed);
        ppm_telemetry::counter("sim.batch_cycles_skipped").add(total - executed);
        self.lanes.stats
    }
}

/// Advances one lane by one *productive* step: either a full simulated
/// cycle, or a jump over a span of provable no-op cycles with the span's
/// statistics charged in closed form.
#[inline(always)]
fn step(lane: &mut LaneView<'_>, shared: &Shared, window: &Window<'_>) {
    if !try_skip(lane, window) {
        cycle(lane, shared, window);
    }
}

/// One simulated cycle, stage for stage identical to the serial engine.
#[inline(always)]
fn cycle(lane: &mut LaneView<'_>, shared: &Shared, window: &Window<'_>) {
    process_completions(lane);
    commit(lane, shared, window);
    issue(lane, shared, window);
    dispatch(lane, shared, window);
    fetch(lane, shared, window);
    lane.stats.rob_occupancy_sum += lane.rob.len() as u64;
    lane.s.now += 1;
    lane.s.executed += 1;
}

/// Detects a span of cycles in which *no* pipeline stage can make
/// progress, and charges it wholesale: ROB occupancy accrues at the
/// current level and exactly one dispatch stall counter (or none) ticks
/// per cycle — precisely what the serial engine would have recorded
/// cycle by cycle.
///
/// The jump additionally retires *pure* completions en route: a
/// completion that wakes no registered dependent, is not the ROB head,
/// and does not restart fetch flips one slot from Issued to Done and
/// changes nothing any stage can observe — dispatch's producer check
/// and commit's head check read the same answer either way — so the
/// serial engine's cycle at that point records exactly the occupancy
/// and stall charge the span accounting already applies. The first
/// *impure* completion (or the dispatch/fetch wake-up, whichever is
/// sooner) ends the jump with a real cycle executed there.
#[inline(always)]
fn try_skip(lane: &mut LaneView<'_>, window: &Window<'_>) -> bool {
    let now0 = lane.s.now;
    // A due completion makes this cycle productive.
    if lane.completions.min_cycle() <= now0 {
        return false;
    }
    // A Done head is committable (Done is only set once `done_cycle`
    // has passed), and a ready entry is issuable: both are progress.
    if !lane.ready.is_empty()
        || lane
            .rob
            .front(lane.s.head_seq)
            .is_some_and(|e| e.state == EntryState::Done)
    {
        return false;
    }
    // Dispatch: replicate the serial gate order exactly. A front that
    // is past rename with free structures would dispatch — no skip. A
    // structurally stalled front charges its stall counter every
    // skipped cycle; a pre-rename front wakes the lane when it matures.
    let mut stall = None;
    let mut wake = u64::MAX;
    if let Some(front) = lane.fetch_queue.front() {
        if front.rename_ready > now0 {
            wake = front.rename_ready;
        } else if lane.rob.len() >= lane.rob_size {
            stall = Some(Stall::Rob);
        } else if lane.s.iq_count >= lane.iq_size {
            stall = Some(Stall::Iq);
        } else if window.instrs[front.seq as usize - window.start].op.is_mem()
            && lane.s.lsq_count >= lane.lsq_size
        {
            stall = Some(Stall::Lsq);
        } else {
            return false;
        }
    }
    // Fetch: blocked on a mispredicted branch, gated until
    // `fetch_available`, out of queue space, or out of trace — anything
    // else would fetch (or at least probe the I-cache) this cycle.
    let can_fetch_later = lane.s.pos - window.start < window.instrs.len()
        && lane.fetch_queue.len() < lane.fq_capacity;
    if lane.s.fetch_blocked_on.is_none() {
        if now0 < lane.s.fetch_available {
            if can_fetch_later {
                wake = wake.min(lane.s.fetch_available);
            }
        } else if can_fetch_later {
            return false;
        }
    }
    let mut now = now0;
    loop {
        let cmin = lane.completions.min_cycle();
        let target = cmin.min(wake);
        if target == u64::MAX {
            // Nothing scheduled to change the lane's state: either the
            // lane is finished (the caller's loop condition catches that
            // after one cycle) or the serial engine would spin here too.
            // Run a real cycle rather than guessing.
            break;
        }
        debug_assert!(target > now);
        let skipped = target - now;
        lane.stats.rob_occupancy_sum += lane.rob.len() as u64 * skipped;
        match stall {
            Some(Stall::Rob) => lane.stats.rob_full_cycles += skipped,
            Some(Stall::Iq) => lane.stats.iq_full_cycles += skipped,
            Some(Stall::Lsq) => lane.stats.lsq_full_cycles += skipped,
            None => {}
        }
        now = target;
        lane.s.now = target;
        if cmin >= wake {
            // Arrived where dispatch or fetch becomes able to progress
            // (their gates cannot close during a skip); completions due
            // at this same cycle are drained by the executed cycle.
            return true;
        }
        // Retire the completions due at `cmin`. An impure one makes
        // this cycle productive — execute it (the records are already
        // applied, exactly as the serial engine's completion stage
        // would have at the top of this cycle).
        if drain_completions(lane, cmin) {
            return true;
        }
        // A completion may have restarted fetch: the gate reopens at
        // `cmin + 1` (never at `cmin` itself), so fold the new
        // `fetch_available` into the wake-up instead of executing here.
        if lane.s.fetch_blocked_on.is_none() && lane.s.fetch_available > now && can_fetch_later {
            wake = wake.min(lane.s.fetch_available);
        }
    }
    now > now0
}

/// Marks finished executions done and wakes their dependents.
#[inline(always)]
fn process_completions(lane: &mut LaneView<'_>) {
    if lane.completions.min_cycle() > lane.s.now {
        return;
    }
    let now = lane.s.now;
    drain_completions(lane, now);
}

/// Drains every completion due at `now`, marking slots Done, restarting
/// fetch after resolved mispredicts, and waking registered dependents.
///
/// Returns whether any drained completion was *impure* — it readied a
/// dependent or completed the ROB head — i.e. whether the serial engine
/// could make stage progress in this cycle because of it. (A fetch
/// restart is pure on its own: fetching resumes no earlier than the
/// next cycle.)
#[inline(always)]
fn drain_completions(lane: &mut LaneView<'_>, now: u64) -> bool {
    let mut due = std::mem::take(lane.due);
    lane.completions.drain_due(now, &mut due);
    let mask = lane.rob.mask;
    let mut impure = false;
    for &seq in &due {
        let idx = (seq & mask) as usize;
        {
            // A completing seq is always still in flight: nothing
            // squashes in a trace-driven model, and commit never
            // retires an entry that has not completed.
            let e = &mut lane.rob.slots[idx];
            debug_assert!(e.seq == seq && e.state == EntryState::Issued);
            e.state = EntryState::Done;
        }
        impure |= seq == lane.s.head_seq;
        // A resolved mispredicted branch restarts fetch.
        if lane.s.fetch_blocked_on == Some(seq) {
            lane.s.fetch_blocked_on = None;
            lane.s.fetch_available = (lane.s.fetch_available).max(now + 1);
            lane.s.last_fetch_line = u64::MAX; // redirect: new line
        }
        // `slots` and `waiters` are distinct fields, so the wake loop
        // reads one while mutating the other without moving either.
        let Rob { slots, waiters, .. } = &mut *lane.rob;
        for &w in &waiters[idx] {
            // A dependent can neither issue nor retire before its
            // producer completes, so it is still in flight too.
            let dep = &mut slots[(w & mask) as usize];
            debug_assert_eq!(dep.seq, w);
            dep.pending_deps -= 1;
            if dep.pending_deps == 0 && dep.state == EntryState::Waiting {
                lane.ready.insert(w);
                impure = true;
            }
        }
        waiters[idx].clear();
    }
    due.clear();
    *lane.due = due;
    impure
}

/// Retires completed instructions in order.
#[inline(always)]
fn commit(lane: &mut LaneView<'_>, shared: &Shared, window: &Window<'_>) {
    let now = lane.s.now;
    for _ in 0..shared.width {
        let head_seq = lane.s.head_seq;
        let Some(head) = lane.rob.front(head_seq) else {
            break;
        };
        if head.state != EntryState::Done || head.done_cycle > now {
            break;
        }
        // In-flight seqs always sit inside the resident window (the
        // previous chunk is kept for exactly this reason).
        debug_assert!(head_seq as usize >= window.start);
        let instr = &window.instrs[head_seq as usize - window.start];
        let op = instr.op;
        // Retire: advance the head; the slot stays resident. The
        // per-class tally is a branchless array bump, folded into the
        // named counters at finalize.
        lane.rob.len -= 1;
        lane.s.head_seq += 1;
        lane.op_counts[op as usize] += 1;
        if op.is_mem() {
            lane.s.lsq_count -= 1;
            if op == Op::Store {
                // The store writes its line at commit; this updates
                // cache state and charges bank/bus occupancy, but
                // does not stall commit (write buffering).
                let _ = lane.hierarchy.data_access(now, instr.mem_addr);
            }
        }
    }
}

/// Wakeup-select: issues ready instructions oldest-first, subject to
/// issue width and per-class functional-unit quotas.
///
/// Walks the ready bitset in sequence order from the ROB head, so
/// selection order matches the serial engine's min-heap; an entry whose
/// functional-unit class is already saturated simply stays set.
#[inline(always)]
fn issue(lane: &mut LaneView<'_>, shared: &Shared, window: &Window<'_>) {
    if lane.ready.is_empty() {
        return;
    }
    let mut quotas = shared.quotas;
    let mut issued = 0;
    let head_seq = lane.s.head_seq;
    let mask = lane.rob.mask;
    let len = lane.rob.len as u64;
    let mut offset = 0u64;
    'scan: while offset < len && !lane.ready.is_empty() {
        // One bitset word's worth of in-flight slots, oldest first,
        // clamped to the ring's wrap point (rings smaller than a word
        // wrap mid-word).
        let seq0 = head_seq + offset;
        let p = (seq0 & mask) as usize;
        let span = (64 - (p & 63) as u64)
            .min(len - offset)
            .min(mask + 1 - (p as u64));
        let mut word = lane.ready.words[p >> 6] >> (p & 63);
        if span < 64 {
            word &= (1u64 << span) - 1;
        }
        while word != 0 {
            let seq = seq0 + u64::from(word.trailing_zeros());
            word &= word - 1; // clear lowest candidate bit (local copy)
            let idx = (seq & mask) as usize;
            let fwd_src = {
                let e = &lane.rob.slots[idx];
                debug_assert!(
                    e.seq == seq && e.state == EntryState::Waiting && e.pending_deps == 0
                );
                e.fwd_src
            };
            let instr = &window.instrs[seq as usize - window.start];
            let (op, addr) = (instr.op, instr.mem_addr);
            let class = class_of(op);
            if quotas[class] == 0 {
                continue; // deferred: the ready bit stays set
            }
            quotas[class] -= 1;
            issued += 1;
            lane.ready.remove(seq);

            let now = lane.s.now;
            let done_cycle = match op {
                Op::IntAlu | Op::Branch | Op::Store => now + 1,
                Op::IntMul => now + shared.int_mul_lat,
                Op::FpAlu => now + shared.fp_alu_lat,
                Op::FpMul => now + shared.fp_mul_lat,
                Op::Load => {
                    if fwd_src != u64::MAX {
                        // The producing store has executed (we depended
                        // on it); forward at L1 latency without a cache
                        // port round trip.
                        debug_assert!(lane
                            .rob
                            .get(head_seq, fwd_src)
                            .is_none_or(|s| s.state != EntryState::Waiting));
                        lane.stats.forwarded_loads += 1;
                        now + lane.dl1_lat
                    } else {
                        lane.hierarchy.data_access(now, addr).complete
                    }
                }
            };
            let e = &mut lane.rob.slots[idx];
            e.state = EntryState::Issued;
            e.done_cycle = done_cycle;
            lane.s.iq_count -= 1;
            lane.completions.push(now, done_cycle, seq);
            if issued == shared.width {
                break 'scan;
            }
        }
        offset += span;
    }
}

/// Renames and dispatches fetched instructions into the window.
#[inline(always)]
fn dispatch(lane: &mut LaneView<'_>, shared: &Shared, window: &Window<'_>) {
    let now = lane.s.now;
    for _ in 0..shared.width {
        let Some(front) = lane.fetch_queue.front() else {
            break;
        };
        if front.rename_ready > now {
            break;
        }
        if lane.rob.len() >= lane.rob_size {
            lane.stats.rob_full_cycles += 1;
            break;
        }
        if lane.s.iq_count >= lane.iq_size {
            lane.stats.iq_full_cycles += 1;
            break;
        }
        // The window keeps the previous chunk resident, so every queued
        // seq is still addressable here (fq_capacity << CHUNK).
        let idx = front.seq as usize - window.start;
        let instr = &window.instrs[idx];
        let fwd = window.fwd[idx];
        let is_mem = instr.op.is_mem();
        if is_mem && lane.s.lsq_count >= lane.lsq_size {
            lane.stats.lsq_full_cycles += 1;
            break;
        }
        // lint:allow(panic-path): front() was checked non-empty above.
        let f = lane.fetch_queue.pop_front().expect("checked front");
        let head_seq = lane.s.head_seq;
        debug_assert_eq!(f.seq, head_seq + lane.rob.len() as u64);

        // Register dependences via producer distance.
        let mut pending_deps: u8 = 0;
        for dist in [instr.src1_dist, instr.src2_dist] {
            if dist == 0 {
                continue;
            }
            let Some(producer) = f.seq.checked_sub(u64::from(dist)) else {
                continue;
            };
            if lane
                .rob
                .get(head_seq, producer)
                .is_some_and(|p| p.state != EntryState::Done)
            {
                lane.rob.waiters[(producer & lane.rob.mask) as usize].push(f.seq);
                pending_deps += 1;
            }
        }

        // Memory dependence: loads wait for the youngest older store to
        // the same word (precomputed by the shared pass) and forward
        // from it — iff that store is still in flight, which is exactly
        // when the serial engine's store map would still hold it.
        let mut fwd_src = u64::MAX;
        if instr.op == Op::Load && fwd >= head_seq && fwd != u64::MAX {
            fwd_src = fwd;
            // Older than the load and uncommitted, so in the ROB.
            let p = lane.rob.slot_mut(fwd);
            debug_assert_eq!(p.seq, fwd);
            if p.state != EntryState::Done {
                lane.rob.waiters[(fwd & lane.rob.mask) as usize].push(f.seq);
                pending_deps += 1;
            }
        }

        if is_mem {
            lane.s.lsq_count += 1;
        }
        lane.s.iq_count += 1;
        let idx = (f.seq & lane.rob.mask) as usize;
        debug_assert!(lane.rob.waiters[idx].is_empty());
        lane.rob.slots[idx] = Slot {
            seq: f.seq,
            done_cycle: 0,
            fwd_src,
            state: EntryState::Waiting,
            pending_deps,
        };
        lane.rob.len += 1;
        if pending_deps == 0 {
            lane.ready.insert(f.seq);
        }
    }
}

/// Brings instructions from the shared window into the front end.
#[inline(always)]
fn fetch(lane: &mut LaneView<'_>, shared: &Shared, window: &Window<'_>) {
    if lane.s.fetch_blocked_on.is_some() || lane.s.now < lane.s.fetch_available {
        return;
    }
    let now = lane.s.now;
    for _ in 0..shared.width {
        if lane.fetch_queue.len() >= lane.fq_capacity {
            break;
        }
        let idx = lane.s.pos - window.start;
        let Some(instr) = window.instrs.get(idx) else {
            break;
        };
        // Instruction cache: one lookup per new line.
        let line = instr.pc >> shared.line_bits;
        if line != lane.s.last_fetch_line {
            let outcome = lane.hierarchy.inst_access(now, instr.pc);
            lane.s.last_fetch_line = line;
            if !outcome.l1_hit {
                // Fetch stalls until the line arrives; retry then.
                lane.s.fetch_available = outcome.complete;
                break;
            }
        }
        let seq = lane.s.pos as u64;
        lane.s.pos += 1;
        // The shared pass computed this branch's outcome (and this
        // load's forwarding source) already.
        let mispredicted = window.flags[idx];
        lane.fetch_queue.push_back(Fetched {
            seq,
            rename_ready: now + lane.front_depth,
        });
        if mispredicted {
            // Stop fetching until the branch resolves.
            lane.s.fetch_blocked_on = Some(seq);
            break;
        }
        if instr.op == Op::Branch && instr.taken {
            // Cannot fetch past a taken branch in the same cycle;
            // the next fetch starts at the target's line.
            lane.s.last_fetch_line = u64::MAX;
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Processor;

    fn loop_pc(i: u64) -> u64 {
        0x1000 + (i % 256) * 4
    }

    /// A trace mixing every op class with branches and memory traffic.
    fn mixed_trace(len: u64) -> Vec<Instr> {
        let mut rng = ppm_rng::Rng::seed_from_u64(99);
        (0..len)
            .map(|i| {
                let pc = loop_pc(i);
                let s1 = rng.below(8) as u32;
                let s2 = rng.below(4) as u32;
                match rng.below(10) {
                    0..=2 => Instr::load(pc, rng.below(1 << 22) & !7, s1, s2),
                    3 => Instr::store(pc, rng.below(1 << 22) & !7, s1, s2),
                    4 => Instr::branch(pc, rng.chance(0.6), 0x1000 + rng.below(256) * 4, s1),
                    5 => Instr::alu(Op::IntMul, pc, s1, s2),
                    6 => Instr::alu(Op::FpAlu, pc, s1, s2),
                    7 => Instr::alu(Op::FpMul, pc, s1, s2),
                    _ => Instr::alu(Op::IntAlu, pc, s1, s2),
                }
            })
            .collect()
    }

    fn serial(config: &SimConfig, trace: &[Instr]) -> SimStats {
        Processor::new(config.clone()).run(trace.iter().copied())
    }

    #[test]
    fn empty_batch_is_rejected() {
        assert!(matches!(
            BatchProcessor::new(vec![]),
            Err(BatchError::Empty)
        ));
    }

    #[test]
    fn invalid_config_is_rejected_with_its_index() {
        let bad = SimConfig {
            rob_size: 1,
            ..SimConfig::default()
        };
        let err = BatchProcessor::new(vec![SimConfig::default(), bad]).unwrap_err();
        match err {
            BatchError::InvalidConfig { index, .. } => assert_eq!(index, 1),
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
        assert!(err.to_string().contains("configuration 1"));
    }

    #[test]
    fn heterogeneous_fixed_machines_are_rejected() {
        let mut other = SimConfig::default();
        other.fixed.width = 8;
        let err = BatchProcessor::new(vec![SimConfig::default(), other]).unwrap_err();
        assert!(matches!(
            err,
            BatchError::HeterogeneousFixedMachine { index: 1 }
        ));
        assert!(err.to_string().contains("fixed machine"));
    }

    #[test]
    fn single_lane_matches_serial() {
        let trace = mixed_trace(8_000);
        let config = SimConfig::default();
        let batched = BatchProcessor::new(vec![config.clone()])
            .unwrap()
            .run(trace.iter().copied());
        assert_eq!(batched[0], serial(&config, &trace));
    }

    #[test]
    fn empty_trace_finishes_every_lane_immediately() {
        let configs = vec![SimConfig::default(); 3];
        let batched = BatchProcessor::new(configs)
            .unwrap()
            .run(std::iter::empty());
        for stats in batched {
            assert_eq!(stats.instructions, 0);
            assert_eq!(stats.cycles, 0);
        }
    }

    #[test]
    fn divergent_design_points_match_their_serial_runs() {
        // Configurations chosen to maximize lane divergence: tiny vs
        // huge windows, shallow vs deep pipes, cold vs warm caches.
        let trace = mixed_trace(20_000);
        let configs: Vec<SimConfig> = [
            (7u32, 24u32, 8u32, 1u32),
            (14, 76, 32, 2),
            (24, 128, 64, 4),
            (10, 48, 16, 3),
        ]
        .iter()
        .map(|&(depth, rob, dl1, lat)| {
            SimConfig::builder()
                .pipe_depth(depth)
                .rob_size(rob)
                .dl1_size_kb(dl1)
                .dl1_lat(lat)
                .build()
                .unwrap()
        })
        .collect();
        let batched = BatchProcessor::new(configs.clone())
            .unwrap()
            .run(trace.iter().copied());
        for (l, config) in configs.iter().enumerate() {
            assert_eq!(batched[l], serial(config, &trace), "lane {l}");
        }
    }

    #[test]
    fn chunk_boundaries_do_not_leak_into_timing() {
        // A trace a little over one chunk forces a window slide right
        // where a fetch group can straddle the barrier.
        let trace = mixed_trace(CHUNK as u64 + 37);
        let configs = vec![
            SimConfig::builder().rob_size(24).build().unwrap(),
            SimConfig::builder().rob_size(128).build().unwrap(),
        ];
        let batched = BatchProcessor::new(configs.clone())
            .unwrap()
            .run(trace.iter().copied());
        for (l, config) in configs.iter().enumerate() {
            assert_eq!(batched[l], serial(config, &trace), "lane {l}");
        }
    }
}
