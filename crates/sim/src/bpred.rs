//! Branch direction and target prediction.

/// Which direction predictor the front end uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PredictorKind {
    /// A table of 2-bit counters indexed by PC only.
    #[default]
    Bimodal,
    /// gshare: counters indexed by `PC ⊕ global history`.
    Gshare,
    /// A tournament of bimodal and gshare with a per-PC chooser
    /// (Alpha 21264 style).
    Tournament,
}

/// A gshare direction predictor: a table of 2-bit saturating counters
/// indexed by `PC ⊕ global history`.
///
/// # Examples
///
/// ```
/// use ppm_sim::Gshare;
///
/// // With zero history bits gshare degenerates to a bimodal table,
/// // which makes the learning easy to see.
/// let mut g = Gshare::new(4096, 0);
/// for _ in 0..8 { g.update(0x400, true, g.predict(0x400)); }
/// assert!(g.predict(0x400));
/// ```
#[derive(Debug, Clone)]
pub struct Gshare {
    counters: Vec<u8>,
    history: u64,
    history_mask: u64,
    index_mask: u64,
}

impl Gshare {
    /// Creates a predictor with `entries` 2-bit counters and
    /// `history_bits` of global history.
    ///
    /// # Panics
    ///
    /// Panics unless `entries` is a power of two and
    /// `history_bits <= 32`.
    pub fn new(entries: u32, history_bits: u32) -> Self {
        assert!(entries.is_power_of_two(), "entries must be a power of two");
        assert!(history_bits <= 32, "history too long");
        Gshare {
            counters: vec![1; entries as usize], // weakly not-taken
            history: 0,
            history_mask: (1u64 << history_bits) - 1,
            index_mask: (entries - 1) as u64,
        }
    }

    fn index(&self, pc: u64) -> usize {
        (((pc >> 2) ^ self.history) & self.index_mask) as usize
    }

    /// Predicts the direction of the branch at `pc`.
    pub fn predict(&self, pc: u64) -> bool {
        self.counters[self.index(pc)] >= 2
    }

    /// Trains the predictor with the actual outcome. `predicted` must be
    /// the value returned by [`Gshare::predict`] *before* this update
    /// (needed by callers for bookkeeping; the predictor itself uses the
    /// actual outcome).
    pub fn update(&mut self, pc: u64, taken: bool, predicted: bool) {
        let _ = predicted;
        let idx = self.index(pc);
        let c = &mut self.counters[idx];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        self.history = ((self.history << 1) | taken as u64) & self.history_mask;
    }
}

/// A direct-mapped branch target buffer.
#[derive(Debug, Clone)]
pub struct Btb {
    tags: Vec<u64>,
    targets: Vec<u64>,
    mask: u64,
}

impl Btb {
    /// Creates a BTB with `entries` slots.
    ///
    /// # Panics
    ///
    /// Panics unless `entries` is a power of two.
    pub fn new(entries: u32) -> Self {
        assert!(entries.is_power_of_two(), "entries must be a power of two");
        Btb {
            tags: vec![u64::MAX; entries as usize],
            targets: vec![0; entries as usize],
            mask: (entries - 1) as u64,
        }
    }

    /// Looks up the predicted target for the branch at `pc`.
    pub fn lookup(&self, pc: u64) -> Option<u64> {
        let idx = ((pc >> 2) & self.mask) as usize;
        (self.tags[idx] == pc).then(|| self.targets[idx])
    }

    /// Installs or updates the target for `pc`.
    pub fn update(&mut self, pc: u64, target: u64) {
        let idx = ((pc >> 2) & self.mask) as usize;
        self.tags[idx] = pc;
        self.targets[idx] = target;
    }
}

/// The combined front-end branch predictor: gshare direction + BTB
/// target + a return address stack (RAS). A branch is considered
/// mispredicted if the predicted direction is wrong, or if it is
/// predicted taken but the predicted target is stale or missing.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    kind: PredictorKind,
    gshare: Gshare,
    bimodal: Gshare,
    /// Per-PC chooser counters for the tournament: >=2 selects gshare.
    chooser: Vec<u8>,
    chooser_mask: u64,
    btb: Btb,
    ras: Vec<u64>,
    ras_capacity: usize,
    /// Total predicted branches.
    pub predictions: u64,
    /// Direction or target mispredictions.
    pub mispredictions: u64,
}

impl BranchPredictor {
    /// Depth of the return address stack.
    pub const RAS_DEPTH: usize = 16;

    /// Creates the predictor with the bimodal direction scheme when
    /// `history_bits == 0`, gshare otherwise (backward-compatible
    /// behaviour).
    ///
    /// # Panics
    ///
    /// Panics if the table sizes are not powers of two.
    pub fn new(gshare_entries: u32, history_bits: u32, btb_entries: u32) -> Self {
        let kind = if history_bits == 0 {
            PredictorKind::Bimodal
        } else {
            PredictorKind::Gshare
        };
        Self::with_kind(kind, gshare_entries, history_bits.max(1), btb_entries)
    }

    /// Creates a predictor of an explicit kind. For `Tournament`, both
    /// component tables get `entries` counters and the chooser another
    /// `entries`.
    ///
    /// # Panics
    ///
    /// Panics if the table sizes are not powers of two.
    pub fn with_kind(
        kind: PredictorKind,
        entries: u32,
        history_bits: u32,
        btb_entries: u32,
    ) -> Self {
        assert!(entries.is_power_of_two(), "entries must be a power of two");
        BranchPredictor {
            kind,
            gshare: Gshare::new(entries, history_bits),
            bimodal: Gshare::new(entries, 0),
            chooser: vec![2; entries as usize],
            chooser_mask: (entries - 1) as u64,
            btb: Btb::new(btb_entries),
            ras: Vec::with_capacity(Self::RAS_DEPTH),
            ras_capacity: Self::RAS_DEPTH,
            predictions: 0,
            mispredictions: 0,
        }
    }

    /// Predicts the direction of a conditional branch and trains the
    /// component tables.
    fn predict_direction(&mut self, pc: u64, taken: bool) -> bool {
        match self.kind {
            PredictorKind::Bimodal => {
                let p = self.bimodal.predict(pc);
                self.bimodal.update(pc, taken, p);
                p
            }
            PredictorKind::Gshare => {
                let p = self.gshare.predict(pc);
                self.gshare.update(pc, taken, p);
                p
            }
            PredictorKind::Tournament => {
                let pg = self.gshare.predict(pc);
                let pb = self.bimodal.predict(pc);
                let idx = ((pc >> 2) & self.chooser_mask) as usize;
                let use_gshare = self.chooser[idx] >= 2;
                let p = if use_gshare { pg } else { pb };
                // Train the chooser toward whichever component was right
                // (when they disagree).
                if pg != pb {
                    let c = &mut self.chooser[idx];
                    if pg == taken {
                        *c = (*c + 1).min(3);
                    } else {
                        *c = c.saturating_sub(1);
                    }
                }
                self.gshare.update(pc, taken, pg);
                self.bimodal.update(pc, taken, pb);
                p
            }
        }
    }

    /// Predicts and immediately trains on the resolved branch (the trace
    /// carries the oracle outcome). Returns `true` if the branch was
    /// *mispredicted*.
    pub fn predict_and_update(&mut self, pc: u64, taken: bool, target: u64) -> bool {
        self.predict_kind(crate::BranchKind::Conditional, pc, taken, target)
    }

    /// Like [`BranchPredictor::predict_and_update`] but honouring the
    /// branch kind: calls push the return address stack, returns predict
    /// their target from it.
    pub fn predict_kind(
        &mut self,
        kind: crate::BranchKind,
        pc: u64,
        taken: bool,
        target: u64,
    ) -> bool {
        self.predictions += 1;
        let mispredicted = match kind {
            crate::BranchKind::Conditional => {
                let dir_pred = self.predict_direction(pc, taken);
                let target_pred = self.btb.lookup(pc);
                let wrong = if dir_pred != taken {
                    true
                } else if taken {
                    target_pred != Some(target)
                } else {
                    false
                };
                if taken {
                    self.btb.update(pc, target);
                }
                wrong
            }
            crate::BranchKind::Call => {
                // Direction is trivially taken; the target comes from
                // the BTB. Push the sequential return address.
                let wrong = self.btb.lookup(pc) != Some(target);
                self.btb.update(pc, target);
                if self.ras.len() == self.ras_capacity {
                    self.ras.remove(0); // overflow drops the oldest
                }
                self.ras.push(pc + 4);
                wrong
            }
            crate::BranchKind::Return => self.ras.pop() != Some(target),
        };
        if mispredicted {
            self.mispredictions += 1;
        }
        mispredicted
    }

    /// Fraction of branches mispredicted so far.
    pub fn misprediction_rate(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.predictions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_rng::Rng;

    #[test]
    fn gshare_learns_biased_branch() {
        let mut g = Gshare::new(1024, 8);
        for _ in 0..10 {
            let p = g.predict(0x100);
            g.update(0x100, true, p);
        }
        assert!(g.predict(0x100));
        for _ in 0..10 {
            let p = g.predict(0x100);
            g.update(0x100, false, p);
        }
        assert!(!g.predict(0x100));
    }

    #[test]
    fn gshare_learns_alternating_pattern_via_history() {
        let mut g = Gshare::new(4096, 8);
        let pc = 0x200;
        let mut wrong_late = 0;
        for i in 0..400 {
            let taken = i % 2 == 0;
            let p = g.predict(pc);
            if i >= 200 && p != taken {
                wrong_late += 1;
            }
            g.update(pc, taken, p);
        }
        assert!(
            wrong_late <= 2,
            "history should capture alternation, {wrong_late} late errors"
        );
    }

    #[test]
    fn btb_remembers_targets() {
        let mut btb = Btb::new(256);
        assert_eq!(btb.lookup(0x400), None);
        btb.update(0x400, 0x5000);
        assert_eq!(btb.lookup(0x400), Some(0x5000));
        // A conflicting pc evicts.
        btb.update(0x400 + 256 * 4, 0x6000);
        assert_eq!(btb.lookup(0x400), None);
    }

    #[test]
    fn predictor_counts_mispredictions() {
        let mut bp = BranchPredictor::new(1024, 8, 256);
        // Warm up a strongly taken branch; the very first prediction
        // may miss direction, and the first taken occurrence misses BTB.
        for _ in 0..20 {
            bp.predict_and_update(0x100, true, 0x900);
        }
        let early = bp.mispredictions;
        for _ in 0..100 {
            bp.predict_and_update(0x100, true, 0x900);
        }
        assert_eq!(bp.mispredictions, early, "warm branch keeps mispredicting");
        assert!(bp.misprediction_rate() < 0.2);
    }

    #[test]
    fn random_branches_mispredict_often() {
        let mut bp = BranchPredictor::new(4096, 12, 2048);
        let mut rng = Rng::seed_from_u64(3);
        for i in 0..20_000 {
            let pc = 0x1000 + (i % 37) * 4;
            bp.predict_and_update(pc, rng.chance(0.5), 0x8000);
        }
        let rate = bp.misprediction_rate();
        assert!(rate > 0.35, "random branches should be hard: rate {rate}");
    }

    #[test]
    fn tournament_beats_or_matches_its_components() {
        // A workload mixing biased branches (bimodal territory) with a
        // strongly history-correlated branch (gshare territory).
        let mut rng = Rng::seed_from_u64(12);
        let mut outcomes: Vec<(u64, bool)> = Vec::new();
        for i in 0..30_000u64 {
            // Branch A: 90% taken. Branch B: alternates. Branch C: random.
            match i % 3 {
                0 => outcomes.push((0x100, rng.chance(0.9))),
                1 => outcomes.push((0x200, i % 6 < 3)),
                _ => outcomes.push((0x300, rng.chance(0.5))),
            }
        }
        let rate = |kind: PredictorKind| {
            let mut bp = BranchPredictor::with_kind(kind, 4096, 10, 2048);
            for &(pc, taken) in &outcomes {
                bp.predict_and_update(pc, taken, 0x900);
            }
            bp.misprediction_rate()
        };
        let bimodal = rate(PredictorKind::Bimodal);
        let gshare = rate(PredictorKind::Gshare);
        let tournament = rate(PredictorKind::Tournament);
        assert!(
            tournament <= bimodal.min(gshare) + 0.01,
            "tournament {tournament} vs bimodal {bimodal} / gshare {gshare}"
        );
    }

    #[test]
    fn with_kind_respects_the_requested_scheme() {
        // An alternating branch: gshare learns it, bimodal cannot.
        let run = |kind| {
            let mut bp = BranchPredictor::with_kind(kind, 1024, 8, 256);
            let mut wrong = 0;
            for i in 0..2000u64 {
                if bp.predict_and_update(0x40, i % 2 == 0, 0x80) {
                    wrong += 1;
                }
            }
            wrong
        };
        assert!(run(PredictorKind::Gshare) < 50);
        assert!(run(PredictorKind::Bimodal) > 500);
    }

    #[test]
    fn target_change_counts_as_misprediction() {
        let mut bp = BranchPredictor::new(1024, 8, 256);
        for _ in 0..10 {
            bp.predict_and_update(0x100, true, 0x900);
        }
        let before = bp.mispredictions;
        bp.predict_and_update(0x100, true, 0xA00); // new target
        assert_eq!(bp.mispredictions, before + 1);
    }
}
