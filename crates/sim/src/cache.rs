//! A set-associative cache with configurable replacement.

/// The replacement policy of a set-associative cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReplacementPolicy {
    /// Evict the least recently used way (the default).
    #[default]
    Lru,
    /// Evict the oldest-filled way, ignoring reuse.
    Fifo,
    /// Evict a pseudo-randomly chosen way (deterministic LCG).
    Random,
}

/// Hit/miss counters for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of accesses.
    pub accesses: u64,
    /// Number of misses.
    pub misses: u64,
}

impl CacheStats {
    /// Miss ratio (0 when no accesses have occurred).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// A set-associative cache with LRU replacement.
///
/// Only tag state is modeled — the simulator is timing-only. Writes
/// allocate (write-allocate, write-back is not separately modeled: the
/// timing effect of dirty evictions is folded into the DRAM bank busy
/// time).
///
/// # Examples
///
/// ```
/// use ppm_sim::Cache;
///
/// let mut c = Cache::new(8 * 1024, 2, 64); // 8 KiB, 2-way, 64 B lines
/// assert!(!c.access(0x1000));         // cold miss
/// assert!(c.access(0x1000));          // now hot
/// assert!(c.access(0x1038));          // same line
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    sets: usize,
    assoc: usize,
    line_bits: u32,
    /// `tags[set * assoc + way]`; `u64::MAX` = invalid.
    tags: Vec<u64>,
    /// Replacement stamps, parallel to `tags` (meaning depends on the
    /// policy: last-use time for LRU, fill time for FIFO).
    stamps: Vec<u64>,
    clock: u64,
    policy: ReplacementPolicy,
    /// Deterministic LCG state for the random policy.
    lcg: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates a cache of `size_bytes` with the given associativity and
    /// line size.
    ///
    /// # Panics
    ///
    /// Panics unless `size_bytes`, `assoc` and `line_size` are positive,
    /// `line_size` is a power of two, and the geometry yields at least
    /// one power-of-two set.
    pub fn new(size_bytes: u64, assoc: u32, line_size: u32) -> Self {
        Cache::with_policy(size_bytes, assoc, line_size, ReplacementPolicy::Lru)
    }

    /// Like [`Cache::new`] with an explicit replacement policy.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Cache::new`].
    pub fn with_policy(
        size_bytes: u64,
        assoc: u32,
        line_size: u32,
        policy: ReplacementPolicy,
    ) -> Self {
        assert!(size_bytes > 0 && assoc > 0 && line_size > 0);
        assert!(
            line_size.is_power_of_two(),
            "line size must be a power of two"
        );
        let lines = size_bytes / line_size as u64;
        assert!(
            lines >= assoc as u64,
            "cache too small for its associativity"
        );
        let sets = (lines / assoc as u64) as usize;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Cache {
            sets,
            assoc: assoc as usize,
            line_bits: line_size.trailing_zeros(),
            tags: vec![u64::MAX; sets * assoc as usize],
            stamps: vec![0; sets * assoc as usize],
            clock: 0,
            policy,
            lcg: 0x2545_f491_4f6c_dd1d,
            stats: CacheStats::default(),
        }
    }

    /// The replacement policy.
    pub fn policy(&self) -> ReplacementPolicy {
        self.policy
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Associativity.
    pub fn assoc(&self) -> usize {
        self.assoc
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Accesses `addr`, allocating on miss. Returns `true` on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.clock += 1;
        self.stats.accesses += 1;
        let line = addr >> self.line_bits;
        let set = (line as usize) & (self.sets - 1);
        let base = set * self.assoc;
        // Hit path.
        for way in 0..self.assoc {
            if self.tags[base + way] == line {
                if self.policy == ReplacementPolicy::Lru {
                    self.stamps[base + way] = self.clock;
                }
                return true;
            }
        }
        // Miss: pick a victim way according to the policy (invalid ways
        // are always filled first).
        self.stats.misses += 1;
        let mut victim = None;
        for way in 0..self.assoc {
            if self.tags[base + way] == u64::MAX {
                victim = Some(way);
                break;
            }
        }
        let victim = victim.unwrap_or_else(|| match self.policy {
            ReplacementPolicy::Lru | ReplacementPolicy::Fifo => {
                let mut v = 0;
                let mut oldest = u64::MAX;
                for way in 0..self.assoc {
                    if self.stamps[base + way] < oldest {
                        oldest = self.stamps[base + way];
                        v = way;
                    }
                }
                v
            }
            ReplacementPolicy::Random => {
                self.lcg = self
                    .lcg
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((self.lcg >> 33) % self.assoc as u64) as usize
            }
        });
        self.tags[base + victim] = line;
        self.stamps[base + victim] = self.clock;
        false
    }

    /// Installs a line without touching the statistics (used for
    /// prefetches, whose fills are not demand accesses).
    pub fn install(&mut self, addr: u64) {
        let before = self.stats;
        self.access(addr);
        self.stats = before;
    }

    /// Checks for presence without updating LRU or statistics.
    pub fn probe(&self, addr: u64) -> bool {
        let line = addr >> self.line_bits;
        let set = (line as usize) & (self.sets - 1);
        let base = set * self.assoc;
        (0..self.assoc).any(|way| self.tags[base + way] == line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_rng::Rng;

    #[test]
    fn geometry() {
        let c = Cache::new(32 * 1024, 4, 64);
        assert_eq!(c.sets(), 128);
        assert_eq!(c.assoc(), 4);
    }

    #[test]
    fn second_access_hits() {
        let mut c = Cache::new(8 * 1024, 2, 64);
        assert!(!c.access(0x4000));
        assert!(c.access(0x4000));
        assert!(c.access(0x403f)); // same 64 B line
        assert!(!c.access(0x4040)); // next line
    }

    #[test]
    fn lru_evicts_least_recent() {
        // Direct construction of a conflict: 2-way set, three lines
        // mapping to the same set.
        let mut c = Cache::new(2 * 64 * 4, 2, 64); // 4 sets, 2 ways
        let set_stride = 4 * 64; // lines with the same set index
        let (a, b, d) = (0u64, set_stride as u64, 2 * set_stride as u64);
        c.access(a);
        c.access(b);
        c.access(a); // a is now MRU
        assert!(!c.access(d)); // evicts b
        assert!(c.access(a), "a should have survived");
        assert!(!c.access(b), "b should have been evicted");
    }

    #[test]
    fn working_set_larger_than_cache_misses() {
        let mut c = Cache::new(8 * 1024, 2, 64);
        // Stream over 64 KiB twice: second pass still misses (capacity).
        for pass in 0..2 {
            let mut misses = 0;
            for i in 0..1024u64 {
                if !c.access(i * 64) {
                    misses += 1;
                }
            }
            assert!(misses > 800, "pass {pass}: only {misses} misses");
        }
    }

    #[test]
    fn working_set_smaller_than_cache_hits_after_warmup() {
        let mut c = Cache::new(64 * 1024, 2, 64);
        for i in 0..128u64 {
            c.access(i * 64); // 8 KiB working set
        }
        let before = c.stats();
        for i in 0..128u64 {
            assert!(c.access(i * 64));
        }
        let after = c.stats();
        assert_eq!(after.misses, before.misses);
    }

    #[test]
    fn fifo_ignores_reuse_when_evicting() {
        // 2-way set; access order a, b, then re-touch a, then c.
        // LRU evicts b (a was re-used); FIFO evicts a (filled first).
        let stride = 4 * 64;
        let (a, b, c) = (0u64, stride as u64, 2 * stride as u64);
        let mut lru = Cache::with_policy(2 * 64 * 4, 2, 64, ReplacementPolicy::Lru);
        let mut fifo = Cache::with_policy(2 * 64 * 4, 2, 64, ReplacementPolicy::Fifo);
        for cache in [&mut lru, &mut fifo] {
            cache.access(a);
            cache.access(b);
            cache.access(a);
            cache.access(c);
        }
        assert!(lru.probe(a) && !lru.probe(b));
        assert!(!fifo.probe(a) && fifo.probe(b));
    }

    #[test]
    fn random_policy_is_deterministic_and_functional() {
        let run = || {
            let mut c = Cache::with_policy(8 * 1024, 2, 64, ReplacementPolicy::Random);
            let mut rng = Rng::seed_from_u64(7);
            for _ in 0..5000 {
                c.access(rng.below(1 << 16));
            }
            c.stats()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "random replacement must be deterministic");
        assert!(a.misses > 0 && a.misses < a.accesses);
    }

    #[test]
    fn policies_agree_on_working_sets_that_fit() {
        for policy in [
            ReplacementPolicy::Lru,
            ReplacementPolicy::Fifo,
            ReplacementPolicy::Random,
        ] {
            let mut c = Cache::with_policy(64 * 1024, 2, 64, policy);
            for _ in 0..3 {
                for i in 0..128u64 {
                    c.access(i * 64);
                }
            }
            // 8 KiB set in a 64 KiB cache: only cold misses.
            assert_eq!(c.stats().misses, 128, "{policy:?}");
        }
    }

    #[test]
    fn install_fills_without_stats() {
        let mut c = Cache::new(8 * 1024, 2, 64);
        c.install(0x5000);
        assert_eq!(c.stats(), CacheStats::default());
        assert!(c.access(0x5000), "installed line should hit");
    }

    #[test]
    fn probe_does_not_disturb_state() {
        let mut c = Cache::new(8 * 1024, 2, 64);
        c.access(0x1000);
        let stats = c.stats();
        assert!(c.probe(0x1000));
        assert!(!c.probe(0x2000));
        assert_eq!(c.stats(), stats);
    }

    #[test]
    fn miss_rate_computation() {
        let mut c = Cache::new(8 * 1024, 2, 64);
        c.access(0x0);
        c.access(0x0);
        assert!((c.stats().miss_rate() - 0.5).abs() < 1e-12);
        assert_eq!(CacheStats::default().miss_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_size_panics() {
        Cache::new(8 * 1024, 2, 48);
    }

    /// A bigger cache never has more misses on the same trace
    /// (inclusion property for LRU with same line size & assoc scaling
    /// by sets).
    #[test]
    fn random_stack_property_across_sizes() {
        for seed in 0..32u64 {
            let mut rng = Rng::seed_from_u64(seed);
            let addrs: Vec<u64> = (0..4000).map(|_| rng.below(1 << 16)).collect();
            let mut small = Cache::new(8 * 1024, 2, 64);
            let mut big = Cache::new(64 * 1024, 2, 64);
            for &a in &addrs {
                small.access(a);
                big.access(a);
            }
            assert!(big.stats().misses <= small.stats().misses, "seed {seed}");
        }
    }

    /// Repeating a short loop that fits in the cache eventually stops
    /// missing.
    #[test]
    fn random_loops_become_hits() {
        for stride in 1u64..8 {
            for lines in [4u64, 9, 17, 31] {
                let mut c = Cache::new(16 * 1024, 2, 64);
                for _ in 0..3 {
                    for i in 0..lines {
                        c.access(i * stride * 64);
                    }
                }
                let misses_before = c.stats().misses;
                for i in 0..lines {
                    c.access(i * stride * 64);
                }
                assert_eq!(
                    c.stats().misses,
                    misses_before,
                    "stride {stride} lines {lines}"
                );
            }
        }
    }
}
