//! Processor configuration: the nine design parameters plus the fixed
//! machine description.

use std::error::Error;
use std::fmt;

use crate::{PredictorKind, ReplacementPolicy};

/// Errors raised when validating a [`SimConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// A parameter is outside its physically meaningful range.
    OutOfRange {
        /// Parameter name.
        param: &'static str,
        /// Human-readable constraint.
        constraint: &'static str,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::OutOfRange { param, constraint } => {
                write!(f, "parameter {param} violates: {constraint}")
            }
        }
    }
}

impl Error for ConfigError {}

/// The parts of the machine held fixed across the paper's design space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FixedMachine {
    /// Fetch/decode/rename/issue/commit width.
    pub width: u32,
    /// Pipeline stages counted as "back end" (execute→commit); the
    /// front-end depth is `pipe_depth - backend_stages`.
    pub backend_stages: u32,
    /// Cache line size in bytes (all levels).
    pub line_size: u32,
    /// L1 instruction cache: associativity and hit latency.
    pub il1_assoc: u32,
    /// L1 instruction cache hit latency in cycles.
    pub il1_lat: u32,
    /// L1 data cache associativity.
    pub dl1_assoc: u32,
    /// L2 associativity.
    pub l2_assoc: u32,
    /// DRAM device access latency in cycles.
    pub mem_lat: u32,
    /// Number of DRAM banks.
    pub mem_banks: u32,
    /// Cycles a bank stays busy per access (precharge + activate).
    pub bank_busy: u32,
    /// Memory bus occupancy per cache-line transfer, in cycles.
    pub bus_per_line: u32,
    /// Miss status holding registers: maximum outstanding L2→memory misses.
    pub mshrs: u32,
    /// Next-line instruction prefetch: an L1I miss also brings in the
    /// following line (idealized arrival timing).
    pub next_line_prefetch: bool,
    /// Replacement policy used by all caches.
    pub replacement: ReplacementPolicy,
    /// Direction-prediction scheme.
    pub predictor: PredictorKind,
    /// gshare pattern history table entries (power of two).
    pub gshare_entries: u32,
    /// gshare global history bits.
    pub gshare_history: u32,
    /// Branch target buffer entries (power of two).
    pub btb_entries: u32,
    /// Integer ALUs.
    pub int_alus: u32,
    /// Integer multiplier units.
    pub int_muls: u32,
    /// FP adders.
    pub fp_alus: u32,
    /// FP multipliers.
    pub fp_muls: u32,
    /// Cache ports for loads/stores issued per cycle.
    pub mem_ports: u32,
    /// Integer multiply latency.
    pub int_mul_lat: u32,
    /// FP add latency.
    pub fp_alu_lat: u32,
    /// FP multiply latency.
    pub fp_mul_lat: u32,
}

impl Default for FixedMachine {
    fn default() -> Self {
        FixedMachine {
            width: 4,
            backend_stages: 4,
            line_size: 64,
            il1_assoc: 2,
            il1_lat: 1,
            dl1_assoc: 2,
            l2_assoc: 8,
            mem_lat: 120,
            mem_banks: 8,
            bank_busy: 30,
            bus_per_line: 8,
            mshrs: 16,
            next_line_prefetch: false,
            replacement: ReplacementPolicy::Lru,
            predictor: PredictorKind::Bimodal,
            gshare_entries: 4096,
            gshare_history: 0,
            btb_entries: 4096,
            int_alus: 4,
            int_muls: 1,
            fp_alus: 2,
            fp_muls: 1,
            mem_ports: 2,
            int_mul_lat: 3,
            fp_alu_lat: 2,
            fp_mul_lat: 4,
        }
    }
}

/// A complete processor configuration: the paper's nine design
/// parameters (Table 1) plus the fixed machine.
///
/// # Examples
///
/// ```
/// use ppm_sim::SimConfig;
///
/// let config = SimConfig::builder()
///     .pipe_depth(14)
///     .rob_size(64)
///     .iq_frac(0.5)
///     .lsq_frac(0.5)
///     .l2_size_kb(1024)
///     .l2_lat(12)
///     .il1_size_kb(32)
///     .dl1_size_kb(32)
///     .dl1_lat(2)
///     .build()?;
/// assert_eq!(config.iq_size(), 32);
/// # Ok::<(), ppm_sim::ConfigError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Total pipeline depth in stages (paper range 7–24).
    pub pipe_depth: u32,
    /// Reorder buffer entries (paper range 24–128).
    pub rob_size: u32,
    /// Issue queue size as a fraction of the ROB (paper range 0.25–0.75).
    pub iq_frac: f64,
    /// Load/store queue size as a fraction of the ROB (0.25–0.75).
    pub lsq_frac: f64,
    /// Unified L2 capacity in KiB (paper range 256–8192, log-spaced).
    pub l2_size_kb: u32,
    /// L2 hit latency in cycles (paper range 5–20).
    pub l2_lat: u32,
    /// L1 instruction cache capacity in KiB (8–64, log-spaced).
    pub il1_size_kb: u32,
    /// L1 data cache capacity in KiB (8–64, log-spaced).
    pub dl1_size_kb: u32,
    /// L1 data cache hit latency in cycles (1–4).
    pub dl1_lat: u32,
    /// Everything held constant in the paper's study.
    pub fixed: FixedMachine,
}

impl Default for SimConfig {
    /// A mid-range configuration near the center of the paper's space.
    fn default() -> Self {
        SimConfig {
            pipe_depth: 14,
            rob_size: 76,
            iq_frac: 0.5,
            lsq_frac: 0.5,
            l2_size_kb: 1024,
            l2_lat: 12,
            il1_size_kb: 32,
            dl1_size_kb: 32,
            dl1_lat: 2,
            fixed: FixedMachine::default(),
        }
    }
}

impl SimConfig {
    /// Starts building a configuration from the default machine.
    pub fn builder() -> SimConfigBuilder {
        SimConfigBuilder {
            config: SimConfig::default(),
        }
    }

    /// The issue queue size in entries: `round(iq_frac × rob_size)`,
    /// at least 4.
    pub fn iq_size(&self) -> u32 {
        ((self.iq_frac * self.rob_size as f64).round() as u32).max(4)
    }

    /// The load/store queue size in entries: `round(lsq_frac × rob_size)`,
    /// at least 4.
    pub fn lsq_size(&self) -> u32 {
        ((self.lsq_frac * self.rob_size as f64).round() as u32).max(4)
    }

    /// Front-end depth (fetch→rename stages): sets the misprediction
    /// refill penalty. At least 2.
    pub fn front_depth(&self) -> u32 {
        self.pipe_depth
            .saturating_sub(self.fixed.backend_stages)
            .max(2)
    }

    /// Validates all parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::OutOfRange`] describing the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), ConfigError> {
        fn check(
            ok: bool,
            param: &'static str,
            constraint: &'static str,
        ) -> Result<(), ConfigError> {
            if ok {
                Ok(())
            } else {
                Err(ConfigError::OutOfRange { param, constraint })
            }
        }
        check(
            (5..=40).contains(&self.pipe_depth),
            "pipe_depth",
            "5 <= pipe_depth <= 40",
        )?;
        check(
            (8..=512).contains(&self.rob_size),
            "rob_size",
            "8 <= rob_size <= 512",
        )?;
        check(
            (0.05..=1.0).contains(&self.iq_frac),
            "iq_frac",
            "0.05 <= iq_frac <= 1.0",
        )?;
        check(
            (0.05..=1.0).contains(&self.lsq_frac),
            "lsq_frac",
            "0.05 <= lsq_frac <= 1.0",
        )?;
        check(
            (64..=65536).contains(&self.l2_size_kb) && self.l2_size_kb.is_power_of_two(),
            "l2_size_kb",
            "power of two in [64, 65536]",
        )?;
        check(
            (2..=64).contains(&self.l2_lat),
            "l2_lat",
            "2 <= l2_lat <= 64",
        )?;
        check(
            (4..=512).contains(&self.il1_size_kb) && self.il1_size_kb.is_power_of_two(),
            "il1_size_kb",
            "power of two in [4, 512]",
        )?;
        check(
            (4..=512).contains(&self.dl1_size_kb) && self.dl1_size_kb.is_power_of_two(),
            "dl1_size_kb",
            "power of two in [4, 512]",
        )?;
        check(
            (1..=8).contains(&self.dl1_lat),
            "dl1_lat",
            "1 <= dl1_lat <= 8",
        )?;
        check(self.dl1_lat < self.l2_lat, "dl1_lat", "dl1_lat < l2_lat")?;
        check(
            self.fixed.width >= 1 && self.fixed.width <= 16,
            "width",
            "1 <= width <= 16",
        )?;
        check(
            self.fixed.line_size.is_power_of_two() && self.fixed.line_size >= 16,
            "line_size",
            "power of two >= 16",
        )?;
        check(
            self.fixed.gshare_entries.is_power_of_two(),
            "gshare_entries",
            "power of two",
        )?;
        check(
            self.fixed.btb_entries.is_power_of_two(),
            "btb_entries",
            "power of two",
        )?;
        check(
            self.fixed.mem_banks.is_power_of_two(),
            "mem_banks",
            "power of two",
        )?;
        check(self.fixed.mshrs >= 1, "mshrs", "at least 1")?;
        check(
            self.fixed.gshare_history <= 32,
            "gshare_history",
            "at most 32 bits",
        )?;
        check(
            self.fixed.predictor == PredictorKind::Bimodal || self.fixed.gshare_history >= 1,
            "gshare_history",
            "at least 1 bit for history-based predictors",
        )?;
        Ok(())
    }
}

/// Builder for [`SimConfig`] (terminal method: [`SimConfigBuilder::build`]).
#[derive(Debug, Clone)]
pub struct SimConfigBuilder {
    config: SimConfig,
}

impl SimConfigBuilder {
    /// Sets the total pipeline depth.
    pub fn pipe_depth(mut self, v: u32) -> Self {
        self.config.pipe_depth = v;
        self
    }

    /// Sets the reorder buffer size.
    pub fn rob_size(mut self, v: u32) -> Self {
        self.config.rob_size = v;
        self
    }

    /// Sets the issue queue size as a fraction of the ROB.
    pub fn iq_frac(mut self, v: f64) -> Self {
        self.config.iq_frac = v;
        self
    }

    /// Sets the LSQ size as a fraction of the ROB.
    pub fn lsq_frac(mut self, v: f64) -> Self {
        self.config.lsq_frac = v;
        self
    }

    /// Sets the L2 capacity in KiB.
    pub fn l2_size_kb(mut self, v: u32) -> Self {
        self.config.l2_size_kb = v;
        self
    }

    /// Sets the L2 hit latency.
    pub fn l2_lat(mut self, v: u32) -> Self {
        self.config.l2_lat = v;
        self
    }

    /// Sets the L1 instruction cache capacity in KiB.
    pub fn il1_size_kb(mut self, v: u32) -> Self {
        self.config.il1_size_kb = v;
        self
    }

    /// Sets the L1 data cache capacity in KiB.
    pub fn dl1_size_kb(mut self, v: u32) -> Self {
        self.config.dl1_size_kb = v;
        self
    }

    /// Sets the L1 data cache hit latency.
    pub fn dl1_lat(mut self, v: u32) -> Self {
        self.config.dl1_lat = v;
        self
    }

    /// Replaces the fixed machine description.
    pub fn fixed(mut self, v: FixedMachine) -> Self {
        self.config.fixed = v;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if any parameter is out of range.
    pub fn build(self) -> Result<SimConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert!(SimConfig::default().validate().is_ok());
    }

    #[test]
    fn derived_sizes() {
        let c = SimConfig {
            rob_size: 100,
            iq_frac: 0.31,
            lsq_frac: 0.69,
            ..SimConfig::default()
        };
        assert_eq!(c.iq_size(), 31);
        assert_eq!(c.lsq_size(), 69);
    }

    #[test]
    fn front_depth_tracks_pipe_depth() {
        let mut c = SimConfig {
            pipe_depth: 24,
            ..SimConfig::default()
        };
        assert_eq!(c.front_depth(), 20);
        c.pipe_depth = 7;
        assert_eq!(c.front_depth(), 3);
        c.pipe_depth = 5;
        assert_eq!(c.front_depth(), 2); // clamped
    }

    #[test]
    fn builder_round_trip() {
        let c = SimConfig::builder()
            .pipe_depth(20)
            .rob_size(128)
            .l2_size_kb(8192)
            .build()
            .unwrap();
        assert_eq!(c.pipe_depth, 20);
        assert_eq!(c.rob_size, 128);
        assert_eq!(c.l2_size_kb, 8192);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(SimConfig::builder().pipe_depth(2).build().is_err());
        assert!(SimConfig::builder().rob_size(4).build().is_err());
        assert!(SimConfig::builder().l2_size_kb(300).build().is_err()); // not pow2
        assert!(SimConfig::builder().dl1_lat(30).build().is_err());
        let err = SimConfig::builder().iq_frac(0.0).build().unwrap_err();
        assert!(err.to_string().contains("iq_frac"));
    }

    #[test]
    fn dl1_lat_must_be_below_l2_lat() {
        assert!(SimConfig::builder().dl1_lat(6).l2_lat(5).build().is_err());
    }

    #[test]
    fn gshare_history_bounds_are_validated() {
        // Bimodal never consults the history register, so zero bits is
        // fine there — the default machine relies on it.
        let bimodal = FixedMachine {
            predictor: PredictorKind::Bimodal,
            gshare_history: 0,
            ..FixedMachine::default()
        };
        assert!(SimConfig::builder().fixed(bimodal).build().is_ok());
        // History-based predictors need at least one bit: a zero-history
        // gshare silently degenerates to bimodal, which is exactly the
        // misconfiguration validate exists to reject.
        for kind in [PredictorKind::Gshare, PredictorKind::Tournament] {
            let zero = FixedMachine {
                predictor: kind,
                gshare_history: 0,
                ..FixedMachine::default()
            };
            let err = SimConfig::builder().fixed(zero).build().unwrap_err();
            assert!(err.to_string().contains("gshare_history"), "{err}");
            let one = FixedMachine {
                predictor: kind,
                gshare_history: 1,
                ..FixedMachine::default()
            };
            assert!(SimConfig::builder().fixed(one).build().is_ok());
        }
        // The history register is 64-bit but capped at 32 bits of use.
        let oversized = FixedMachine {
            predictor: PredictorKind::Gshare,
            gshare_history: 33,
            ..FixedMachine::default()
        };
        assert!(SimConfig::builder().fixed(oversized).build().is_err());
    }

    #[test]
    fn paper_extremes_are_valid() {
        // The corners of the paper's Table 1 space.
        for (depth, rob, frac) in [(24u32, 24u32, 0.25f64), (7, 128, 0.75)] {
            let c = SimConfig::builder()
                .pipe_depth(depth)
                .rob_size(rob)
                .iq_frac(frac)
                .lsq_frac(frac)
                .l2_size_kb(256)
                .l2_lat(20)
                .il1_size_kb(8)
                .dl1_size_kb(8)
                .dl1_lat(4)
                .build();
            assert!(c.is_ok(), "corner ({depth},{rob},{frac}) rejected");
        }
    }
}
