//! A first-order energy model over the simulator's event counts.
//!
//! The paper's conclusion notes that "similar models can be developed
//! for other metrics such as power consumption". This module provides
//! that metric: an activity-based energy estimate in the spirit of
//! Wattch/CACTI-class models — per-event dynamic energies whose cache
//! costs scale with capacity and associativity, plus leakage
//! proportional to the sizes of the provisioned structures.
//!
//! Energy is computed *post hoc* from a run's [`SimStats`] and its
//! [`SimConfig`]; the timing model is untouched. Units are arbitrary
//! (pJ-like); only relative comparisons across configurations are
//! meaningful, which is all the surrogate-modeling methodology needs.

use crate::{SimConfig, SimStats};

/// Per-event energy coefficients (arbitrary pJ-like units).
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyParams {
    /// Integer ALU operation.
    pub int_alu: f64,
    /// Integer multiply.
    pub int_mul: f64,
    /// FP add.
    pub fp_alu: f64,
    /// FP multiply.
    pub fp_mul: f64,
    /// Branch (predictor access + resolution).
    pub branch: f64,
    /// Base cost of an access to a 16 KiB, 2-way cache; real cost
    /// scales with `sqrt(size × assoc / 32 KiB)` (CACTI-like growth).
    pub cache_access_base: f64,
    /// Extra energy per cache miss (fill + replacement bookkeeping).
    pub cache_miss: f64,
    /// One DRAM access (activate + transfer).
    pub dram_access: f64,
    /// Per-dispatch window bookkeeping (ROB/IQ/LSQ write), at 64
    /// entries; scales with `sqrt(entries / 64)`.
    pub window_per_instr: f64,
    /// Leakage per cycle per KiB of cache.
    pub leak_per_kb_cycle: f64,
    /// Leakage per cycle per window entry.
    pub leak_per_entry_cycle: f64,
}

impl Default for EnergyParams {
    fn default() -> Self {
        EnergyParams {
            int_alu: 1.0,
            int_mul: 3.0,
            fp_alu: 2.5,
            fp_mul: 4.0,
            branch: 1.5,
            cache_access_base: 2.0,
            cache_miss: 4.0,
            dram_access: 60.0,
            window_per_instr: 1.2,
            leak_per_kb_cycle: 0.002,
            leak_per_entry_cycle: 0.004,
        }
    }
}

impl EnergyParams {
    /// Dynamic energy of one access to a cache of the given geometry.
    pub fn cache_access(&self, size_kb: u32, assoc: u32) -> f64 {
        self.cache_access_base * ((size_kb * assoc) as f64 / 32.0).sqrt()
    }
}

/// An energy estimate broken down by component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyBreakdown {
    /// Functional units and the instruction window.
    pub core: f64,
    /// L1I + L1D + L2 dynamic energy.
    pub caches: f64,
    /// DRAM dynamic energy.
    pub dram: f64,
    /// Leakage over the run.
    pub leakage: f64,
    /// Committed instructions (for per-instruction metrics).
    pub instructions: u64,
    /// Elapsed cycles (for delay metrics).
    pub cycles: u64,
}

impl EnergyBreakdown {
    /// Total energy.
    pub fn total(&self) -> f64 {
        self.core + self.caches + self.dram + self.leakage
    }

    /// Energy per committed instruction.
    ///
    /// # Panics
    ///
    /// Panics if no instructions were committed.
    pub fn epi(&self) -> f64 {
        assert!(self.instructions > 0, "no instructions committed");
        self.total() / self.instructions as f64
    }

    /// Energy–delay product per instruction: `EPI × CPI` (lower is
    /// better; balances performance against power).
    ///
    /// # Panics
    ///
    /// Panics if no instructions were committed.
    pub fn edp(&self) -> f64 {
        self.epi() * self.cycles as f64 / self.instructions as f64
    }
}

/// Estimates the energy of a finished run.
///
/// # Examples
///
/// ```
/// use ppm_sim::{estimate_energy, EnergyParams, Instr, Op, Processor, SimConfig};
///
/// let config = SimConfig::default();
/// let trace = (0..20_000).map(|i| Instr::alu(Op::IntAlu, 0x1000 + (i % 256) * 4, 0, 0));
/// let stats = Processor::new(config.clone()).run(trace);
/// let energy = estimate_energy(&stats, &config, &EnergyParams::default());
/// assert!(energy.total() > 0.0);
/// assert!(energy.epi() > 0.0);
/// ```
pub fn estimate_energy(
    stats: &SimStats,
    config: &SimConfig,
    params: &EnergyParams,
) -> EnergyBreakdown {
    let f = &config.fixed;
    // Functional-unit work by committed class; window bookkeeping per
    // committed instruction (wrong-path work is not simulated, so
    // committed counts are exact activity counts).
    let window_entries = (config.rob_size + config.iq_size() + config.lsq_size()) as f64;
    let core = stats.int_ops as f64 * params.int_alu
        + stats.mul_ops as f64 * params.int_mul
        + stats.fp_ops as f64 * params.fp_alu
        + stats.fp_mul_ops as f64 * params.fp_mul
        + stats.branches as f64 * params.branch
        + stats.instructions as f64 * params.window_per_instr * (window_entries / 192.0).sqrt();

    let caches = stats.il1.accesses as f64 * params.cache_access(config.il1_size_kb, f.il1_assoc)
        + stats.dl1.accesses as f64 * params.cache_access(config.dl1_size_kb, f.dl1_assoc)
        + stats.l2.accesses as f64 * params.cache_access(config.l2_size_kb, f.l2_assoc)
        + (stats.il1.misses + stats.dl1.misses + stats.l2.misses) as f64 * params.cache_miss;

    let dram = stats.dram_accesses as f64 * params.dram_access;

    let total_cache_kb = (config.il1_size_kb + config.dl1_size_kb + config.l2_size_kb) as f64;
    let leakage = stats.cycles as f64
        * (total_cache_kb * params.leak_per_kb_cycle
            + window_entries * params.leak_per_entry_cycle);

    EnergyBreakdown {
        core,
        caches,
        dram,
        leakage,
        instructions: stats.instructions,
        cycles: stats.cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Instr, Op, Processor};

    fn loop_pc(i: u64) -> u64 {
        0x1000 + (i % 256) * 4
    }

    fn run(config: SimConfig) -> (SimStats, SimConfig) {
        let trace = (0..30_000u64).map(|i| {
            if i % 4 == 0 {
                Instr::load(loop_pc(i), 0x8000 + (i % 512) * 8, 1, 0)
            } else {
                Instr::alu(Op::IntAlu, loop_pc(i), 1, 0)
            }
        });
        let stats = Processor::new(config.clone()).run(trace);
        (stats, config)
    }

    #[test]
    fn breakdown_components_are_positive_and_sum() {
        let (stats, config) = run(SimConfig::default());
        let e = estimate_energy(&stats, &config, &EnergyParams::default());
        assert!(e.core > 0.0 && e.caches > 0.0 && e.leakage > 0.0);
        assert!((e.total() - (e.core + e.caches + e.dram + e.leakage)).abs() < 1e-9);
    }

    #[test]
    fn bigger_caches_cost_more_energy_on_a_cache_friendly_trace() {
        let small = run(SimConfig::builder().l2_size_kb(256).build().unwrap());
        let big = run(SimConfig::builder().l2_size_kb(8192).build().unwrap());
        let params = EnergyParams::default();
        let e_small = estimate_energy(&small.0, &small.1, &params);
        let e_big = estimate_energy(&big.0, &big.1, &params);
        // The trace fits in L1, so the big L2 buys nothing and leaks more.
        assert!(
            e_big.epi() > e_small.epi(),
            "8MB L2 epi {} should exceed 256KB epi {}",
            e_big.epi(),
            e_small.epi()
        );
    }

    #[test]
    fn cache_access_energy_scales_with_geometry() {
        let p = EnergyParams::default();
        assert!(p.cache_access(64, 2) > p.cache_access(8, 2));
        assert!(p.cache_access(32, 8) > p.cache_access(32, 2));
        // Reference point: 16 KiB, 2-way == base.
        assert!((p.cache_access(16, 2) - p.cache_access_base).abs() < 1e-12);
    }

    #[test]
    fn edp_combines_energy_and_delay() {
        let (stats, config) = run(SimConfig::default());
        let e = estimate_energy(&stats, &config, &EnergyParams::default());
        let cpi = stats.cpi();
        assert!((e.edp() - e.epi() * cpi).abs() < 1e-9);
    }

    #[test]
    fn fp_work_is_accounted() {
        let trace = (0..10_000u64).map(|i| Instr::alu(Op::FpMul, loop_pc(i), 0, 0));
        let config = SimConfig::default();
        let stats = Processor::new(config.clone()).run(trace);
        assert_eq!(stats.fp_mul_ops, 10_000);
        let e = estimate_energy(&stats, &config, &EnergyParams::default());
        let trace2 = (0..10_000u64).map(|i| Instr::alu(Op::IntAlu, loop_pc(i), 0, 0));
        let stats2 = Processor::new(config.clone()).run(trace2);
        let e2 = estimate_energy(&stats2, &config, &EnergyParams::default());
        assert!(
            e.core > e2.core,
            "FP multiplies should cost more than ALU ops"
        );
    }

    #[test]
    #[should_panic(expected = "no instructions")]
    fn epi_without_instructions_panics() {
        let e = EnergyBreakdown {
            core: 1.0,
            caches: 1.0,
            dram: 0.0,
            leakage: 0.0,
            instructions: 0,
            cycles: 10,
        };
        e.epi();
    }
}
