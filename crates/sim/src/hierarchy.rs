//! Composition of the cache levels and the memory system into
//! instruction- and data-side access paths.

use crate::{Cache, MemorySystem, SimConfig};

/// The timing outcome of a memory-hierarchy access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Cycle at which the data is available.
    pub complete: u64,
    /// True if the access hit in its L1.
    pub l1_hit: bool,
    /// True if the access hit in the L2 (only meaningful on L1 miss).
    pub l2_hit: bool,
}

/// The full memory hierarchy: split L1s, unified L2, DRAM.
///
/// # Examples
///
/// ```
/// use ppm_sim::{Hierarchy, SimConfig};
///
/// let mut h = Hierarchy::new(&SimConfig::default());
/// let miss = h.data_access(0, 0x10_0000);
/// assert!(!miss.l1_hit);
/// let hit = h.data_access(miss.complete, 0x10_0000);
/// assert!(hit.l1_hit);
/// // The hit's latency is far below the miss's.
/// assert!(hit.complete - miss.complete < miss.complete - 0);
/// ```
#[derive(Debug, Clone)]
pub struct Hierarchy {
    il1: Cache,
    dl1: Cache,
    l2: Cache,
    mem: MemorySystem,
    il1_lat: u64,
    dl1_lat: u64,
    l2_lat: u64,
    next_line_prefetch: bool,
    line_size: u64,
}

impl Hierarchy {
    /// Builds the hierarchy described by a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (callers should have run
    /// [`SimConfig::validate`]).
    pub fn new(config: &SimConfig) -> Self {
        let line = config.fixed.line_size;
        let line_bits = line.trailing_zeros();
        Hierarchy {
            il1: Cache::with_policy(
                config.il1_size_kb as u64 * 1024,
                config.fixed.il1_assoc,
                line,
                config.fixed.replacement,
            ),
            dl1: Cache::with_policy(
                config.dl1_size_kb as u64 * 1024,
                config.fixed.dl1_assoc,
                line,
                config.fixed.replacement,
            ),
            l2: Cache::with_policy(
                config.l2_size_kb as u64 * 1024,
                config.fixed.l2_assoc,
                line,
                config.fixed.replacement,
            ),
            mem: MemorySystem::new(
                config.fixed.mem_lat,
                config.fixed.mem_banks,
                config.fixed.bank_busy,
                config.fixed.bus_per_line,
                config.fixed.mshrs,
                line_bits,
            ),
            il1_lat: config.fixed.il1_lat as u64,
            dl1_lat: config.dl1_lat as u64,
            l2_lat: config.l2_lat as u64,
            next_line_prefetch: config.fixed.next_line_prefetch,
            line_size: config.fixed.line_size as u64,
        }
    }

    /// Next-line prefetch on an I-miss: install `addr`'s successor line
    /// in the L1I. Arrival timing is idealized (the line is usable by
    /// the time sequential fetch reaches it); DRAM bank/bus occupancy is
    /// still charged so prefetch traffic contends with demand misses.
    fn prefetch_next_line(&mut self, now: u64, addr: u64) {
        let next = (addr & !(self.line_size - 1)) + self.line_size;
        if self.il1.probe(next) {
            return;
        }
        self.il1.install(next);
        if !self.l2.probe(next) {
            self.l2.install(next);
            let _ = self.mem.access(now + self.il1_lat + self.l2_lat, next);
        }
    }

    /// Fetch-side access for the instruction at `addr`.
    ///
    /// The engine calls this once per line transition; with next-line
    /// prefetch enabled every such access (hit or miss) triggers a
    /// prefetch of the following line, so sequential sweeps stay ahead
    /// of demand.
    pub fn inst_access(&mut self, now: u64, addr: u64) -> AccessOutcome {
        if self.next_line_prefetch {
            self.prefetch_next_line(now, addr);
        }
        if self.il1.access(addr) {
            return AccessOutcome {
                complete: now + self.il1_lat,
                l1_hit: true,
                l2_hit: false,
            };
        }
        let l2_probe = now + self.il1_lat;
        if self.l2.access(addr) {
            return AccessOutcome {
                complete: l2_probe + self.l2_lat,
                l1_hit: false,
                l2_hit: true,
            };
        }
        AccessOutcome {
            complete: self.mem.access(l2_probe + self.l2_lat, addr),
            l1_hit: false,
            l2_hit: false,
        }
    }

    /// Data-side access (load, or store-line allocation) at `addr`.
    pub fn data_access(&mut self, now: u64, addr: u64) -> AccessOutcome {
        if self.dl1.access(addr) {
            return AccessOutcome {
                complete: now + self.dl1_lat,
                l1_hit: true,
                l2_hit: false,
            };
        }
        let l2_probe = now + self.dl1_lat;
        if self.l2.access(addr) {
            return AccessOutcome {
                complete: l2_probe + self.l2_lat,
                l1_hit: false,
                l2_hit: true,
            };
        }
        let complete = self.mem.access(l2_probe + self.l2_lat, addr);
        AccessOutcome {
            complete,
            l1_hit: false,
            l2_hit: false,
        }
    }

    /// The L1 instruction cache.
    pub fn il1(&self) -> &Cache {
        &self.il1
    }

    /// The L1 data cache.
    pub fn dl1(&self) -> &Cache {
        &self.dl1
    }

    /// The unified L2.
    pub fn l2(&self) -> &Cache {
        &self.l2
    }

    /// The DRAM model.
    pub fn memory(&self) -> &MemorySystem {
        &self.mem
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hierarchy() -> Hierarchy {
        Hierarchy::new(&SimConfig::default())
    }

    #[test]
    fn l1_hit_latency() {
        let mut h = hierarchy();
        h.data_access(0, 0x100);
        let o = h.data_access(500, 0x100);
        assert!(o.l1_hit);
        assert_eq!(o.complete, 500 + 2); // default dl1_lat = 2
    }

    #[test]
    fn l2_hit_latency() {
        let mut h = hierarchy();
        h.data_access(0, 0x100); // installs in L1 and L2
                                 // Evict from L1 by thrashing its set, leaving L2 resident.
                                 // L1 is 32 KiB 2-way with 64 B lines → 256 sets → set stride 16 KiB.
        h.data_access(1000, 0x100 + 16 * 1024);
        h.data_access(2000, 0x100 + 32 * 1024);
        let o = h.data_access(10_000, 0x100);
        assert!(!o.l1_hit);
        assert!(o.l2_hit, "line should still be in L2");
        assert_eq!(o.complete, 10_000 + 2 + 12); // dl1_lat + l2_lat
    }

    #[test]
    fn full_miss_goes_to_dram() {
        let mut h = hierarchy();
        let o = h.data_access(0, 0xdead_0000);
        assert!(!o.l1_hit && !o.l2_hit);
        // dl1(2) + l2(12) probes, then 120 DRAM + 8 bus.
        assert_eq!(o.complete, 2 + 12 + 120 + 8);
    }

    #[test]
    fn inst_path_uses_il1_latency() {
        let mut h = hierarchy();
        h.inst_access(0, 0x4000);
        let o = h.inst_access(100, 0x4000);
        assert!(o.l1_hit);
        assert_eq!(o.complete, 101); // il1_lat = 1
    }

    #[test]
    fn inst_and_data_share_l2() {
        let mut h = hierarchy();
        h.inst_access(0, 0x8000); // install via I-side
                                  // Data access to the same line: L1D misses but L2 hits.
        let o = h.data_access(1000, 0x8000);
        assert!(!o.l1_hit);
        assert!(o.l2_hit);
    }

    #[test]
    fn larger_dl1_reduces_misses() {
        let configs = [8u32, 64];
        let mut misses = Vec::new();
        for kb in configs {
            let config = SimConfig::builder().dl1_size_kb(kb).build().unwrap();
            let mut h = Hierarchy::new(&config);
            // 32 KiB working set streamed repeatedly.
            for pass in 0..4 {
                let _ = pass;
                for i in 0..512u64 {
                    h.data_access(0, i * 64);
                }
            }
            misses.push(h.dl1().stats().misses);
        }
        assert!(
            misses[1] * 3 < misses[0],
            "64 KiB L1 should hit a 32 KiB set: {misses:?}"
        );
    }

    #[test]
    fn next_line_prefetch_cuts_sequential_instruction_misses() {
        let fixed = crate::FixedMachine {
            next_line_prefetch: true,
            ..crate::FixedMachine::default()
        };
        let on_config = SimConfig {
            fixed,
            ..SimConfig::default()
        };
        let mut on = Hierarchy::new(&on_config);
        let mut off = Hierarchy::new(&SimConfig::default());
        // Sequential code sweep: one access per line over 256 KiB.
        for i in 0..4096u64 {
            on.inst_access(i * 10, i * 64);
            off.inst_access(i * 10, i * 64);
        }
        let (m_on, m_off) = (on.il1().stats().misses, off.il1().stats().misses);
        assert!(
            m_on * 4 < m_off,
            "prefetch should eliminate most sequential misses: {m_on} vs {m_off}"
        );
    }

    #[test]
    fn prefetch_does_not_affect_data_side() {
        let fixed = crate::FixedMachine {
            next_line_prefetch: true,
            ..crate::FixedMachine::default()
        };
        let config = SimConfig {
            fixed,
            ..SimConfig::default()
        };
        let mut h = Hierarchy::new(&config);
        h.data_access(0, 0x40_0000);
        assert!(
            !h.dl1().probe(0x40_0000 + 64),
            "data side must not prefetch"
        );
    }

    #[test]
    fn l2_latency_parameter_is_respected() {
        for lat in [5u32, 20] {
            let config = SimConfig::builder().l2_lat(lat).build().unwrap();
            let mut h = Hierarchy::new(&config);
            h.data_access(0, 0x100);
            // Thrash L1 set, then re-access: L2 hit with latency `lat`.
            h.data_access(1000, 0x100 + 16 * 1024);
            h.data_access(2000, 0x100 + 32 * 1024);
            let o = h.data_access(10_000, 0x100);
            assert!(o.l2_hit);
            assert_eq!(o.complete, 10_000 + 2 + lat as u64);
        }
    }
}
