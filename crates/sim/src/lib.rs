//! A cycle-level, trace-driven, out-of-order superscalar processor
//! simulator.
//!
//! This crate is the "detailed simulation" substrate of the MICRO 2006
//! reproduction: it models the performance-critical events and
//! structures of a speculative, dynamically scheduled superscalar
//! processor —
//!
//! * a parameterizable pipeline whose front-end depth sets the branch
//!   misprediction refill penalty,
//! * the reorder buffer, issue queue and load/store queue,
//! * a gshare branch direction predictor and a branch target buffer,
//! * split L1 instruction/data caches and a unified L2, all set
//!   associative with LRU replacement,
//! * a DRAM model with banks, a memory-controller queue (MSHR-limited
//!   outstanding misses) and a shared memory bus with contention,
//! * per-class functional units and store-to-load forwarding.
//!
//! The nine microarchitectural parameters of the paper's Table 1 are all
//! honoured by [`SimConfig`]. Simulation is *trace driven*: the
//! instruction stream (a [`TraceSource`]) is a pure function of the
//! workload, never of the configuration, so CPI is a deterministic
//! function of the design point — the property the surrogate-modeling
//! methodology requires.
//!
//! # Examples
//!
//! ```
//! use ppm_sim::{Processor, SimConfig, Instr, Op};
//!
//! // A tiny hand-written trace: independent ALU ops in a small loop
//! // (the loop keeps the instruction cache warm).
//! let trace = (0..50_000).map(|i| Instr::alu(Op::IntAlu, 0x1000 + (i % 256) * 4, 0, 0));
//! let config = SimConfig::default();
//! let stats = Processor::new(config).run(trace);
//! assert!(stats.cpi() < 1.0); // superscalar issue beats 1 IPC
//! ```

mod batch;
mod bpred;
mod cache;
mod config;
mod energy;
mod hierarchy;
mod memory;
mod pipeline;
mod stats;
mod trace;

pub use batch::{BatchError, BatchProcessor};
pub use bpred::{BranchPredictor, Btb, Gshare, PredictorKind};
pub use cache::{Cache, CacheStats, ReplacementPolicy};
pub use config::{ConfigError, FixedMachine, SimConfig, SimConfigBuilder};
pub use energy::{estimate_energy, EnergyBreakdown, EnergyParams};
pub use hierarchy::{AccessOutcome, Hierarchy};
pub use memory::MemorySystem;
pub use pipeline::Processor;
pub use stats::{validate_cpi, CpiError, SimStats};
pub use trace::{BranchKind, Instr, Op, TraceSource};
