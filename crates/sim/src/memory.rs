//! The DRAM subsystem: banks, a memory-controller queue limited by
//! MSHRs, and a shared memory bus.

use std::collections::VecDeque;

/// Timing model of the off-chip memory system.
///
/// An L2 miss proceeds through three serialized resources:
///
/// 1. an **MSHR** — at most `mshrs` misses may be outstanding; further
///    misses queue at the memory controller,
/// 2. a **DRAM bank** selected by line address — a bank is busy for
///    `bank_busy` cycles per access and the device takes `mem_lat`
///    cycles to return data,
/// 3. the **memory bus** — each line transfer occupies the bus for
///    `bus_per_line` cycles, serializing concurrent replies.
///
/// Misses to a line that is already in flight merge with it and complete
/// at the same time, consuming no extra bank or bus bandwidth.
///
/// # Examples
///
/// ```
/// use ppm_sim::MemorySystem;
///
/// let mut mem = MemorySystem::new(200, 8, 40, 8, 8, 6);
/// let t1 = mem.access(0, 0x0000);
/// assert!(t1 >= 200);
/// // A second miss to the same line merges.
/// assert_eq!(mem.access(0, 0x0010), t1);
/// ```
#[derive(Debug, Clone)]
pub struct MemorySystem {
    mem_lat: u64,
    bank_busy: u64,
    bus_per_line: u64,
    mshrs: usize,
    line_bits: u32,
    bank_mask: u64,
    bank_busy_until: Vec<u64>,
    bus_busy_until: u64,
    /// In-flight (line, completion) pairs, oldest first.
    in_flight: VecDeque<(u64, u64)>,
    /// Total accesses that reached DRAM (merged misses excluded).
    pub dram_accesses: u64,
    /// Accesses that merged with an in-flight line.
    pub merged: u64,
    /// Cumulative cycles spent queued waiting for an MSHR.
    pub mshr_wait_cycles: u64,
}

impl MemorySystem {
    /// Creates a memory system.
    ///
    /// # Panics
    ///
    /// Panics unless `banks` is a power of two and all latencies and
    /// `mshrs` are positive.
    pub fn new(
        mem_lat: u32,
        banks: u32,
        bank_busy: u32,
        bus_per_line: u32,
        mshrs: u32,
        line_bits: u32,
    ) -> Self {
        assert!(
            banks.is_power_of_two() && banks > 0,
            "banks must be a power of two"
        );
        assert!(mem_lat > 0 && bank_busy > 0 && bus_per_line > 0 && mshrs > 0);
        MemorySystem {
            mem_lat: mem_lat as u64,
            bank_busy: bank_busy as u64,
            bus_per_line: bus_per_line as u64,
            mshrs: mshrs as usize,
            line_bits,
            bank_mask: (banks - 1) as u64,
            bank_busy_until: vec![0; banks as usize],
            bus_busy_until: 0,
            in_flight: VecDeque::new(),
            dram_accesses: 0,
            merged: 0,
            mshr_wait_cycles: 0,
        }
    }

    /// Issues a miss for `addr` at cycle `now`; returns the cycle the
    /// line is delivered.
    pub fn access(&mut self, now: u64, addr: u64) -> u64 {
        let line = addr >> self.line_bits;
        // Retire completed misses to free MSHRs.
        while let Some(&(_, done)) = self.in_flight.front() {
            if done <= now {
                self.in_flight.pop_front();
            } else {
                break;
            }
        }
        // Merge with an in-flight miss to the same line.
        if let Some(&(_, done)) = self.in_flight.iter().find(|(l, _)| *l == line) {
            self.merged += 1;
            return done;
        }
        // Wait for a free MSHR.
        let mut start = now;
        if self.in_flight.len() >= self.mshrs {
            // The queue is ordered by allocation; completions are not
            // strictly ordered, so find the earliest completion.
            let earliest = self
                .in_flight
                .iter()
                .map(|&(_, d)| d)
                .min()
                // Only reached when the MSHR set is full, so in_flight
                // is non-empty. lint:allow(panic-path)
                .expect("non-empty in_flight");
            if earliest > start {
                self.mshr_wait_cycles += earliest - start;
                start = earliest;
            }
            // Drop one entry completing at `earliest`.
            if let Some(pos) = self.in_flight.iter().position(|&(_, d)| d == earliest) {
                self.in_flight.remove(pos);
            }
        }
        // Bank access.
        let bank = (line & self.bank_mask) as usize;
        let bank_start = start.max(self.bank_busy_until[bank]);
        self.bank_busy_until[bank] = bank_start + self.bank_busy;
        let data_ready = bank_start + self.mem_lat;
        // Bus transfer.
        let bus_start = data_ready.max(self.bus_busy_until);
        let done = bus_start + self.bus_per_line;
        self.bus_busy_until = done;
        self.dram_accesses += 1;
        self.in_flight.push_back((line, done));
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> MemorySystem {
        MemorySystem::new(200, 8, 40, 8, 8, 6)
    }

    #[test]
    fn unloaded_latency() {
        let mut m = mem();
        assert_eq!(m.access(100, 0x40), 100 + 200 + 8);
    }

    #[test]
    fn same_line_merges() {
        let mut m = mem();
        let t = m.access(0, 0x1000);
        assert_eq!(m.access(1, 0x1020), t);
        assert_eq!(m.merged, 1);
        assert_eq!(m.dram_accesses, 1);
    }

    #[test]
    fn bus_serializes_concurrent_misses() {
        let mut m = mem();
        // Two misses to different banks at the same cycle: the second
        // reply must wait for the first to release the bus.
        let t1 = m.access(0, 0 << 6);
        let t2 = m.access(0, 1 << 6);
        assert_eq!(t1, 208);
        assert_eq!(t2, t1 + 8, "second transfer should queue on the bus");
    }

    #[test]
    fn bank_conflicts_add_delay() {
        let mut m = mem();
        // Same bank (same line index mod 8), different lines.
        let t1 = m.access(0, 0 << 6);
        let t2 = m.access(0, 8 << 6);
        assert!(t2 >= t1 + 40 - 8, "bank busy time not applied: {t1} {t2}");
    }

    #[test]
    fn mshr_limit_backpressures() {
        let mut m = MemorySystem::new(200, 8, 1, 1, 2, 6);
        // Fill both MSHRs, then a third miss must wait for a completion.
        let t1 = m.access(0, 0 << 6);
        let _t2 = m.access(0, 1 << 6);
        let t3 = m.access(0, 2 << 6);
        assert!(t3 > t1, "third miss should start after an MSHR frees");
        assert!(m.mshr_wait_cycles > 0);
    }

    #[test]
    fn completed_misses_free_mshrs() {
        let mut m = MemorySystem::new(200, 8, 1, 1, 2, 6);
        let t1 = m.access(0, 0 << 6);
        let _ = m.access(0, 1 << 6);
        // Long after both complete, a new miss sees an empty queue.
        let t3 = m.access(t1 + 1000, 2 << 6);
        assert_eq!(t3, t1 + 1000 + 200 + 1);
        assert_eq!(m.mshr_wait_cycles, 0);
    }

    #[test]
    fn throughput_is_bus_limited_under_load() {
        let mut m = mem();
        // Saturate with many distinct lines at cycle 0 equivalents.
        let mut last = 0;
        for i in 0..64u64 {
            last = m.access(0, i << 6);
        }
        // 64 transfers × 8 bus cycles = 512 cycles of bus occupancy
        // after the first data returns.
        assert!(last >= 200 + 64 * 8, "bus contention missing: {last}");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_bank_count_panics() {
        MemorySystem::new(200, 3, 40, 8, 8, 6);
    }
}
