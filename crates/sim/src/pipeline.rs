//! The out-of-order execution engine: fetch, rename/dispatch,
//! wakeup-select issue, execute, and in-order commit.
//!
//! The model is trace-driven with oracle branch outcomes: when fetch
//! reaches a branch the predictor gets wrong, fetch stops (wrong-path
//! instructions are not simulated) and resumes one cycle after the
//! branch executes, after which instructions take `front_depth` cycles
//! to refill the front end — so the misprediction penalty scales with
//! pipeline depth exactly as in an execute-driven simulator.
//!
//! Memory dependences use oracle disambiguation: a load waits for the
//! youngest older in-flight store to the same 8-byte word and forwards
//! from it; independent loads issue around unresolved stores. This
//! idealized-but-deterministic policy is documented in DESIGN.md.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

use crate::{BranchPredictor, CpiError, Hierarchy, Instr, Op, SimConfig, SimStats, TraceSource};

/// Execution state of a ROB entry. Shared with the batched engine
/// (`crate::batch`) so both kernels agree on the state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum EntryState {
    /// Waiting for operands or not yet picked.
    Waiting,
    /// Executing; `done_cycle` is set.
    Issued,
    /// Result available.
    Done,
}

/// One in-flight instruction in the reorder buffer. Shared with the
/// batched engine so per-lane windows carry identical state.
#[derive(Debug)]
pub(crate) struct RobEntry {
    pub(crate) instr: Instr,
    pub(crate) seq: u64,
    pub(crate) state: EntryState,
    pub(crate) pending_deps: u8,
    pub(crate) done_cycle: u64,
    /// For loads: the store seq to forward from, if any.
    pub(crate) forward_from: Option<u64>,
    /// Dependents to wake when this entry completes.
    pub(crate) waiters: Vec<u64>,
}

/// A fetched-but-not-dispatched instruction in the front-end queue.
#[derive(Debug)]
pub(crate) struct FetchedInstr {
    pub(crate) seq: u64,
    pub(crate) instr: Instr,
    pub(crate) rename_ready: u64,
}

/// The processor: couples the execution engine with a memory hierarchy
/// and branch predictor built from a [`SimConfig`].
///
/// # Examples
///
/// ```
/// use ppm_sim::{Processor, SimConfig, Instr, Op};
///
/// let trace = (0..500).map(|i| Instr::alu(Op::IntAlu, 0x1000 + i * 4, 1, 0));
/// let stats = Processor::new(SimConfig::default()).run(trace);
/// // A serial dependence chain cannot beat 1.0 CPI.
/// assert!(stats.cpi() >= 0.99);
/// ```
#[derive(Debug)]
pub struct Processor {
    config: SimConfig,
    hierarchy: Hierarchy,
    bpred: BranchPredictor,
}

impl Processor {
    /// Builds a processor for the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration does not pass
    /// [`SimConfig::validate`].
    pub fn new(config: SimConfig) -> Self {
        config
            .validate()
            // Documented `# Panics` contract — callers validate configs
            // at the API boundary. lint:allow(panic-path)
            .expect("Processor::new requires a valid configuration");
        let hierarchy = Hierarchy::new(&config);
        // `gshare_history` is bounds-checked by `validate` above (>= 1
        // for history-based predictors), so no clamp is needed here.
        let bpred = BranchPredictor::with_kind(
            config.fixed.predictor,
            config.fixed.gshare_entries,
            config.fixed.gshare_history,
            config.fixed.btb_entries,
        );
        Processor {
            config,
            hierarchy,
            bpred,
        }
    }

    /// The configuration this processor models.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Runs the trace to completion and returns the statistics.
    ///
    /// Bound the run length with `trace.take(n)`.
    pub fn run(mut self, trace: impl TraceSource) -> SimStats {
        let mut engine = Engine::new(&self.config);
        let mut trace = trace.peekable();
        let mut stats = SimStats::default();

        while !engine.finished(&mut trace) {
            engine.cycle(&mut trace, &mut self.hierarchy, &mut self.bpred, &mut stats);
        }

        stats.cycles = engine.now;
        stats.il1 = self.hierarchy.il1().stats();
        stats.dl1 = self.hierarchy.dl1().stats();
        stats.l2 = self.hierarchy.l2().stats();
        stats.dram_accesses = self.hierarchy.memory().dram_accesses;
        stats.mshr_wait_cycles = self.hierarchy.memory().mshr_wait_cycles;
        stats.mispredicts = self.bpred.mispredictions;
        record_run_telemetry(&stats);
        stats
    }

    /// Like [`Processor::run`], but validates the headline metric at
    /// the source: an empty, non-finite, or non-positive CPI is a
    /// typed [`CpiError`] instead of a silent value a model could
    /// train on.
    ///
    /// # Errors
    ///
    /// See [`CpiError`].
    pub fn try_run(self, trace: impl TraceSource) -> Result<SimStats, CpiError> {
        let stats = self.run(trace);
        stats.checked_cpi()?;
        Ok(stats)
    }
}

/// Adds one finished run's statistics to the global telemetry counters,
/// in bulk so the per-cycle loop stays untouched. The batched engine
/// calls this once per lane, keeping `sim.*` counters identical to N
/// serial runs.
pub(crate) fn record_run_telemetry(stats: &SimStats) {
    ppm_telemetry::counter("sim.runs").inc();
    ppm_telemetry::counter("sim.instructions").add(stats.instructions);
    ppm_telemetry::counter("sim.cycles").add(stats.cycles);
    ppm_telemetry::counter("sim.branches").add(stats.branches);
    ppm_telemetry::counter("sim.mispredicts").add(stats.mispredicts);
    ppm_telemetry::counter("sim.il1_misses").add(stats.il1.misses);
    ppm_telemetry::counter("sim.dl1_misses").add(stats.dl1.misses);
    ppm_telemetry::counter("sim.l2_misses").add(stats.l2.misses);
    ppm_telemetry::counter("sim.dram_accesses").add(stats.dram_accesses);
    if stats.instructions > 0 {
        // Millicpi keeps the histogram integral while preserving three
        // decimal places of CPI resolution.
        ppm_telemetry::histogram("sim.run_millicpi").record((stats.cpi() * 1000.0) as u64);
    }
}

/// Per-run mutable pipeline state.
struct Engine {
    now: u64,
    next_seq: u64,
    head_seq: u64,
    rob: VecDeque<RobEntry>,
    rob_size: usize,
    iq_size: usize,
    lsq_size: usize,
    iq_count: usize,
    lsq_count: usize,
    width: usize,
    front_depth: u64,
    fq_capacity: usize,
    fetch_queue: VecDeque<FetchedInstr>,
    /// Fetch is stopped until this mispredicted branch resolves.
    fetch_blocked_on: Option<u64>,
    /// Fetch may not proceed before this cycle (I-miss / redirect).
    fetch_available: u64,
    last_fetch_line: u64,
    line_bits: u32,
    ready: BinaryHeap<Reverse<u64>>,
    completions: BinaryHeap<Reverse<(u64, u64)>>,
    /// Youngest in-flight store per 8-byte word.
    store_map: HashMap<u64, u64>,
    /// Per-cycle issue quota per class: [int_alu, int_mul, fp_alu, fp_mul, mem].
    quotas: [u32; 5],
    /// (int_mul_lat, fp_alu_lat, fp_mul_lat, dl1_lat) in cycles.
    fixed_lat: (u64, u64, u64, u64),
}

/// Functional-unit class of an op, indexing the per-cycle issue quotas
/// `[int_alu, int_mul, fp_alu, fp_mul, mem]`.
pub(crate) fn class_of(op: Op) -> usize {
    match op {
        Op::IntAlu | Op::Branch => 0,
        Op::IntMul => 1,
        Op::FpAlu => 2,
        Op::FpMul => 3,
        Op::Load | Op::Store => 4,
    }
}

impl Engine {
    fn new(config: &SimConfig) -> Self {
        let front_depth = config.front_depth() as u64;
        let width = config.fixed.width as usize;
        Engine {
            now: 0,
            next_seq: 0,
            head_seq: 0,
            rob: VecDeque::with_capacity(config.rob_size as usize),
            rob_size: config.rob_size as usize,
            iq_size: config.iq_size() as usize,
            lsq_size: config.lsq_size() as usize,
            iq_count: 0,
            lsq_count: 0,
            width,
            front_depth,
            fq_capacity: ((front_depth as usize) + 4) * width,
            fetch_queue: VecDeque::new(),
            fetch_blocked_on: None,
            fetch_available: 0,
            last_fetch_line: u64::MAX,
            line_bits: config.fixed.line_size.trailing_zeros(),
            ready: BinaryHeap::new(),
            completions: BinaryHeap::new(),
            store_map: HashMap::new(),
            quotas: [
                config.fixed.int_alus,
                config.fixed.int_muls,
                config.fixed.fp_alus,
                config.fixed.fp_muls,
                config.fixed.mem_ports,
            ],
            fixed_lat: (
                config.fixed.int_mul_lat as u64,
                config.fixed.fp_alu_lat as u64,
                config.fixed.fp_mul_lat as u64,
                config.dl1_lat as u64,
            ),
        }
    }

    fn finished(&self, trace: &mut std::iter::Peekable<impl TraceSource>) -> bool {
        self.rob.is_empty() && self.fetch_queue.is_empty() && trace.peek().is_none()
    }

    fn entry(&self, seq: u64) -> Option<&RobEntry> {
        let idx = seq.checked_sub(self.head_seq)? as usize;
        self.rob.get(idx)
    }

    fn entry_mut(&mut self, seq: u64) -> Option<&mut RobEntry> {
        let idx = seq.checked_sub(self.head_seq)? as usize;
        self.rob.get_mut(idx)
    }

    fn cycle(
        &mut self,
        trace: &mut std::iter::Peekable<impl TraceSource>,
        hierarchy: &mut Hierarchy,
        bpred: &mut BranchPredictor,
        stats: &mut SimStats,
    ) {
        self.process_completions();
        self.commit(hierarchy, stats);
        self.issue(hierarchy, stats);
        self.dispatch(stats);
        self.fetch(trace, hierarchy, bpred);
        stats.rob_occupancy_sum += self.rob.len() as u64;
        self.now += 1;
    }

    /// Marks finished executions done and wakes their dependents.
    fn process_completions(&mut self) {
        while let Some(&Reverse((cycle, seq))) = self.completions.peek() {
            if cycle > self.now {
                break;
            }
            self.completions.pop();
            let waiters = {
                let Some(e) = self.entry_mut(seq) else {
                    continue;
                };
                debug_assert_eq!(e.state, EntryState::Issued);
                e.state = EntryState::Done;
                std::mem::take(&mut e.waiters)
            };
            // A resolved mispredicted branch restarts fetch.
            if self.fetch_blocked_on == Some(seq) {
                self.fetch_blocked_on = None;
                self.fetch_available = self.fetch_available.max(self.now + 1);
                self.last_fetch_line = u64::MAX; // redirect: new line
            }
            for w in waiters {
                if let Some(dep) = self.entry_mut(w) {
                    dep.pending_deps -= 1;
                    if dep.pending_deps == 0 && dep.state == EntryState::Waiting {
                        self.ready.push(Reverse(w));
                    }
                }
            }
        }
    }

    /// Retires completed instructions in order.
    fn commit(&mut self, hierarchy: &mut Hierarchy, stats: &mut SimStats) {
        for _ in 0..self.width {
            let Some(head) = self.rob.front() else { break };
            if head.state != EntryState::Done || head.done_cycle > self.now {
                break;
            }
            // lint:allow(panic-path): front() was checked non-empty above.
            let e = self.rob.pop_front().expect("checked front");
            self.head_seq += 1;
            stats.instructions += 1;
            match e.instr.op {
                Op::Load => stats.loads += 1,
                Op::Store => {
                    stats.stores += 1;
                    self.lsq_count -= 1;
                    // The store writes its line at commit; this updates
                    // cache state and charges bank/bus occupancy, but
                    // does not stall commit (write buffering).
                    let word = e.instr.mem_addr >> 3;
                    if self.store_map.get(&word) == Some(&e.seq) {
                        self.store_map.remove(&word);
                    }
                    let _ = hierarchy.data_access(self.now, e.instr.mem_addr);
                }
                Op::Branch => stats.branches += 1,
                Op::IntAlu => stats.int_ops += 1,
                Op::IntMul => stats.mul_ops += 1,
                Op::FpAlu => stats.fp_ops += 1,
                Op::FpMul => stats.fp_mul_ops += 1,
            }
            if e.instr.op == Op::Load {
                self.lsq_count -= 1;
            }
        }
    }

    /// Wakeup-select: issues ready instructions oldest-first, subject to
    /// issue width and per-class functional-unit quotas.
    fn issue(&mut self, hierarchy: &mut Hierarchy, stats: &mut SimStats) {
        let mut quotas = self.quotas;
        let mut issued = 0;
        let mut deferred: Vec<u64> = Vec::new();
        while issued < self.width {
            let Some(&Reverse(seq)) = self.ready.peek() else {
                break;
            };
            self.ready.pop();
            let Some(e) = self.entry(seq) else { continue };
            if e.state != EntryState::Waiting || e.pending_deps != 0 {
                continue; // stale heap entry
            }
            let class = class_of(e.instr.op);
            if quotas[class] == 0 {
                deferred.push(seq);
                continue;
            }
            quotas[class] -= 1;
            issued += 1;

            let op = e.instr.op;
            let addr = e.instr.mem_addr;
            let forward_from = e.forward_from;
            let done_cycle = match op {
                Op::IntAlu | Op::Branch | Op::Store => self.now + 1,
                Op::IntMul => self.now + self.config_int_mul_lat(),
                Op::FpAlu => self.now + self.config_fp_alu_lat(),
                Op::FpMul => self.now + self.config_fp_mul_lat(),
                Op::Load => {
                    if let Some(src) = forward_from {
                        // The producing store has executed (we depended on
                        // it); forward at L1 latency without a cache port
                        // round trip.
                        debug_assert!(self
                            .entry(src)
                            .is_none_or(|s| s.state != EntryState::Waiting));
                        stats.forwarded_loads += 1;
                        self.now + self.dl1_lat_cycles()
                    } else {
                        hierarchy.data_access(self.now, addr).complete
                    }
                }
            };
            // seq came from the issue scan over live ROB entries a few
            // lines up. lint:allow(panic-path)
            let e = self.entry_mut(seq).expect("entry exists");
            e.state = EntryState::Issued;
            e.done_cycle = done_cycle;
            self.iq_count -= 1;
            self.completions.push(Reverse((done_cycle, seq)));
        }
        for seq in deferred {
            self.ready.push(Reverse(seq));
        }
    }

    /// Renames and dispatches fetched instructions into the window.
    fn dispatch(&mut self, stats: &mut SimStats) {
        for _ in 0..self.width {
            let Some(front) = self.fetch_queue.front() else {
                break;
            };
            if front.rename_ready > self.now {
                break;
            }
            if self.rob.len() >= self.rob_size {
                stats.rob_full_cycles += 1;
                break;
            }
            if self.iq_count >= self.iq_size {
                stats.iq_full_cycles += 1;
                break;
            }
            let is_mem = front.instr.op.is_mem();
            if is_mem && self.lsq_count >= self.lsq_size {
                stats.lsq_full_cycles += 1;
                break;
            }
            // lint:allow(panic-path): front() was checked non-empty above.
            let f = self.fetch_queue.pop_front().expect("checked front");
            debug_assert_eq!(f.seq, self.head_seq + self.rob.len() as u64);

            let mut entry = RobEntry {
                instr: f.instr,
                seq: f.seq,
                state: EntryState::Waiting,
                pending_deps: 0,
                done_cycle: 0,
                forward_from: None,
                waiters: Vec::new(),
            };

            // Register dependences via producer distance.
            for dist in [f.instr.src1_dist, f.instr.src2_dist] {
                if dist == 0 {
                    continue;
                }
                let Some(producer) = f.seq.checked_sub(dist as u64) else {
                    continue;
                };
                if producer < self.head_seq {
                    continue; // already committed
                }
                let idx = (producer - self.head_seq) as usize;
                if let Some(p) = self.rob.get_mut(idx) {
                    if p.state != EntryState::Done {
                        p.waiters.push(f.seq);
                        entry.pending_deps += 1;
                    }
                }
            }

            // Memory dependence: loads wait for the youngest older store
            // to the same word and forward from it.
            if f.instr.op == Op::Load {
                let word = f.instr.mem_addr >> 3;
                if let Some(&store_seq) = self.store_map.get(&word) {
                    if store_seq >= self.head_seq {
                        entry.forward_from = Some(store_seq);
                        let idx = (store_seq - self.head_seq) as usize;
                        // store_seq >= head_seq was just checked, so the
                        // index is in the ROB. lint:allow(panic-path)
                        let p = self.rob.get_mut(idx).expect("store in rob");
                        if p.state != EntryState::Done {
                            p.waiters.push(f.seq);
                            entry.pending_deps += 1;
                        }
                    }
                }
            }
            if f.instr.op == Op::Store {
                self.store_map.insert(f.instr.mem_addr >> 3, f.seq);
            }

            if is_mem {
                self.lsq_count += 1;
            }
            self.iq_count += 1;
            if entry.pending_deps == 0 {
                self.ready.push(Reverse(f.seq));
            }
            self.rob.push_back(entry);
        }
    }

    /// Brings instructions from the trace into the front end.
    fn fetch(
        &mut self,
        trace: &mut std::iter::Peekable<impl TraceSource>,
        hierarchy: &mut Hierarchy,
        bpred: &mut BranchPredictor,
    ) {
        if self.fetch_blocked_on.is_some() || self.now < self.fetch_available {
            return;
        }
        for _ in 0..self.width {
            if self.fetch_queue.len() >= self.fq_capacity {
                break;
            }
            let Some(&instr) = trace.peek() else { break };
            // Instruction cache: one lookup per new line.
            let line = instr.pc >> self.line_bits;
            if line != self.last_fetch_line {
                let outcome = hierarchy.inst_access(self.now, instr.pc);
                self.last_fetch_line = line;
                if !outcome.l1_hit {
                    // Fetch stalls until the line arrives; retry then.
                    self.fetch_available = outcome.complete;
                    break;
                }
            }
            trace.next();
            let seq = self.next_seq;
            self.next_seq += 1;

            let mut mispredicted = false;
            if instr.op == Op::Branch {
                mispredicted = bpred.predict_kind(instr.kind, instr.pc, instr.taken, instr.target);
            }
            self.fetch_queue.push_back(FetchedInstr {
                seq,
                instr,
                rename_ready: self.now + self.front_depth,
            });
            if mispredicted {
                // Stop fetching until the branch resolves.
                self.fetch_blocked_on = Some(seq);
                break;
            }
            if instr.op == Op::Branch && instr.taken {
                // Cannot fetch past a taken branch in the same cycle;
                // the next fetch starts at the target's line.
                self.last_fetch_line = u64::MAX;
                break;
            }
        }
    }

    fn config_int_mul_lat(&self) -> u64 {
        self.fixed_lat.0
    }
    fn config_fp_alu_lat(&self) -> u64 {
        self.fixed_lat.1
    }
    fn config_fp_mul_lat(&self) -> u64 {
        self.fixed_lat.2
    }
    fn dl1_lat_cycles(&self) -> u64 {
        self.fixed_lat.3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> SimConfig {
        SimConfig::default()
    }

    /// Loops a small code footprint so the I-cache stays warm.
    fn loop_pc(i: u64) -> u64 {
        0x1000 + (i % 256) * 4
    }

    #[test]
    fn independent_alu_ops_reach_superscalar_ipc() {
        // Long enough that the handful of cold I-misses amortize away.
        let trace = (0..200_000).map(|i| Instr::alu(Op::IntAlu, loop_pc(i), 0, 0));
        let stats = Processor::new(config()).run(trace);
        assert_eq!(stats.instructions, 200_000);
        assert!(
            stats.cpi() < 0.30,
            "cpi {} for 4-wide independent ops",
            stats.cpi()
        );
    }

    #[test]
    fn serial_chain_is_one_ipc() {
        let trace = (0..20_000).map(|i| Instr::alu(Op::IntAlu, loop_pc(i), 1, 0));
        let stats = Processor::new(config()).run(trace);
        let cpi = stats.cpi();
        assert!((0.99..1.2).contains(&cpi), "serial chain cpi {cpi}");
    }

    #[test]
    fn multiply_chain_pays_its_latency() {
        let trace = (0..10_000).map(|i| Instr::alu(Op::IntMul, loop_pc(i), 1, 0));
        let stats = Processor::new(config()).run(trace);
        let cpi = stats.cpi();
        // int_mul_lat = 3 → a serial multiply chain runs at ~3 CPI.
        assert!((2.9..3.3).contains(&cpi), "mul chain cpi {cpi}");
    }

    #[test]
    fn cached_loads_are_cheap_missing_loads_are_not() {
        // All loads to one hot line (always hits after warmup).
        let hot = (0..10_000).map(|i| Instr::load(loop_pc(i), 0x8000, 0, 0));
        let hot_cpi = Processor::new(config()).run(hot).cpi();
        // Loads streaming over 64 MiB (every line misses L2).
        let cold = (0..10_000).map(|i| Instr::load(loop_pc(i), i * 64, 0, 0));
        let cold_cpi = Processor::new(config()).run(cold).cpi();
        assert!(hot_cpi < 1.0, "hot loads cpi {hot_cpi}");
        assert!(
            cold_cpi > 3.0 * hot_cpi,
            "cold loads ({cold_cpi}) should dwarf hot loads ({hot_cpi})"
        );
    }

    #[test]
    fn store_to_load_forwarding_hides_the_miss() {
        // Store to a cold line, then immediately load it back.
        let trace = (0..5_000).flat_map(|i| {
            let addr = 0x100_0000 + i * 64;
            [
                Instr::store(loop_pc(2 * i), addr, 0, 0),
                Instr::load(loop_pc(2 * i + 1), addr, 0, 0),
            ]
        });
        let stats = Processor::new(config()).run(trace);
        assert_eq!(stats.forwarded_loads, 5_000);
        assert!(stats.cpi() < 1.5, "forwarding failed: cpi {}", stats.cpi());
    }

    #[test]
    fn mispredicted_branches_cost_pipeline_depth() {
        // Genuinely random directions defeat any finite-history predictor.
        let mk_trace = || {
            let mut rng = ppm_rng::Rng::seed_from_u64(42);
            (0..30_000u64)
                .map(|i| {
                    Instr::branch(loop_pc(i), rng.chance(0.5), 0x1000 + ((i * 7) % 256) * 4, 0)
                })
                .collect::<Vec<_>>()
                .into_iter()
        };
        let shallow = SimConfig::builder().pipe_depth(7).build().unwrap();
        let deep = SimConfig::builder().pipe_depth(24).build().unwrap();
        let cpi_shallow = Processor::new(shallow).run(mk_trace()).cpi();
        let cpi_deep = Processor::new(deep).run(mk_trace()).cpi();
        assert!(
            cpi_deep > cpi_shallow + 0.3,
            "deep pipe {cpi_deep} should pay more than shallow {cpi_shallow}"
        );
    }

    #[test]
    fn bigger_rob_overlaps_more_misses() {
        // Independent loads streaming through memory: MLP is limited by
        // the window size.
        let mk_trace = || (0..20_000u64).map(|i| Instr::load(loop_pc(i), i * 64, 0, 0));
        let small = SimConfig::builder().rob_size(24).build().unwrap();
        let big = SimConfig::builder().rob_size(128).build().unwrap();
        let cpi_small = Processor::new(small).run(mk_trace()).cpi();
        let cpi_big = Processor::new(big).run(mk_trace()).cpi();
        assert!(
            cpi_big < cpi_small * 0.8,
            "rob 128 ({cpi_big}) should beat rob 24 ({cpi_small})"
        );
    }

    #[test]
    fn icache_pressure_shows_up_with_large_code_footprint() {
        // A 48 KiB code loop: thrashes an 8 KiB I-cache, fits in 64 KiB.
        let mk_trace =
            || (0..120_000u64).map(|i| Instr::alu(Op::IntAlu, 0x1_0000 + (i % 12_288) * 4, 0, 0));
        let small = SimConfig::builder().il1_size_kb(8).build().unwrap();
        let big = SimConfig::builder().il1_size_kb(64).build().unwrap();
        let cpi_small = Processor::new(small).run(mk_trace()).cpi();
        let cpi_big = Processor::new(big).run(mk_trace()).cpi();
        assert!(
            cpi_small > cpi_big * 1.3,
            "8K icache ({cpi_small}) vs 64K ({cpi_big})"
        );
    }

    #[test]
    fn dl1_latency_hurts_dependent_loads() {
        let mk_trace = || (0..20_000u64).map(|i| Instr::load(loop_pc(i), 0x8000, 1, 0));
        let fast = SimConfig::builder().dl1_lat(1).build().unwrap();
        let slow = SimConfig::builder().dl1_lat(4).build().unwrap();
        let cpi_fast = Processor::new(fast).run(mk_trace()).cpi();
        let cpi_slow = Processor::new(slow).run(mk_trace()).cpi();
        assert!(
            cpi_slow > cpi_fast + 2.0,
            "dependent loads: lat4 {cpi_slow} vs lat1 {cpi_fast}"
        );
    }

    #[test]
    fn stats_account_for_all_instructions() {
        let trace = (0..1000u64).map(|i| match i % 4 {
            0 => Instr::load(loop_pc(i), 0x8000 + (i % 16) * 8, 0, 0),
            1 => Instr::store(loop_pc(i), 0x9000 + (i % 16) * 8, 0, 0),
            2 => Instr::branch(loop_pc(i), true, loop_pc(i + 1), 0),
            _ => Instr::alu(Op::FpAlu, loop_pc(i), 1, 2),
        });
        let stats = Processor::new(config()).run(trace);
        assert_eq!(stats.instructions, 1000);
        assert_eq!(stats.loads, 250);
        assert_eq!(stats.stores, 250);
        assert_eq!(stats.branches, 250);
    }

    #[test]
    fn empty_trace_finishes_immediately() {
        let stats = Processor::new(config()).run(std::iter::empty());
        assert_eq!(stats.instructions, 0);
        assert_eq!(stats.cycles, 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let mk_trace = || {
            (0..5_000u64).map(|i| {
                if i % 5 == 0 {
                    Instr::load(loop_pc(i), (i * 2654435761) % (1 << 20), 1, 0)
                } else {
                    Instr::alu(Op::IntAlu, loop_pc(i), 2, 1)
                }
            })
        };
        let a = Processor::new(config()).run(mk_trace());
        let b = Processor::new(config()).run(mk_trace());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "valid configuration")]
    fn invalid_config_panics() {
        let c = SimConfig {
            rob_size: 1,
            ..SimConfig::default()
        };
        Processor::new(c);
    }

    mod fuzz {
        use super::*;
        use ppm_rng::Rng;

        /// A random but plausible instruction stream.
        fn random_trace(seed: u64, len: usize) -> Vec<Instr> {
            let mut rng = Rng::seed_from_u64(seed);
            (0..len as u64)
                .map(|i| {
                    let pc = 0x1000 + (i % 700) * 4;
                    let s1 = rng.below(8) as u32;
                    let s2 = rng.below(4) as u32;
                    match rng.below(10) {
                        0..=2 => Instr::load(pc, rng.below(1 << 22) & !7, s1, s2),
                        3 => Instr::store(pc, rng.below(1 << 22) & !7, s1, s2),
                        4 => {
                            let taken = rng.chance(0.6);
                            Instr::branch(pc, taken, 0x1000 + rng.below(700) * 4, s1)
                        }
                        5 => Instr::alu(Op::IntMul, pc, s1, s2),
                        6 => Instr::alu(Op::FpAlu, pc, s1, s2),
                        7 => Instr::alu(Op::FpMul, pc, s1, s2),
                        _ => Instr::alu(Op::IntAlu, pc, s1, s2),
                    }
                })
                .collect()
        }

        fn random_config(seed: u64) -> SimConfig {
            let mut rng = Rng::seed_from_u64(seed);
            SimConfig::builder()
                .pipe_depth(rng.range_u64(7, 24) as u32)
                .rob_size(rng.range_u64(24, 128) as u32)
                .iq_frac(rng.range_f64(0.25, 0.75))
                .lsq_frac(rng.range_f64(0.25, 0.75))
                .l2_size_kb(1 << rng.range_u64(8, 13) as u32)
                .l2_lat(rng.range_u64(5, 20) as u32)
                .il1_size_kb(1 << rng.range_u64(3, 6) as u32)
                .dl1_size_kb(1 << rng.range_u64(3, 6) as u32)
                .dl1_lat(rng.range_u64(1, 4) as u32)
                .build()
                .expect("random config in valid ranges")
        }

        /// Any trace on any in-range configuration completes with
        /// consistent accounting: every instruction commits exactly
        /// once and the class counters add up.
        #[test]
        fn random_accounting_is_consistent() {
            for seed in 0..24u64 {
                let trace = random_trace(seed, 3_000);
                let stats =
                    Processor::new(random_config(seed ^ 0xabcd)).run(trace.clone().into_iter());
                assert_eq!(stats.instructions, 3_000, "seed {seed}");
                let class_sum = stats.loads
                    + stats.stores
                    + stats.branches
                    + stats.int_ops
                    + stats.mul_ops
                    + stats.fp_ops
                    + stats.fp_mul_ops;
                assert_eq!(class_sum, stats.instructions, "seed {seed}");
                assert!(stats.cycles > 0, "seed {seed}");
                assert!(stats.mispredicts <= stats.branches, "seed {seed}");
            }
        }

        /// CPI can never beat the machine width.
        #[test]
        fn random_cpi_bounded_by_width() {
            for seed in 0..24u64 {
                let trace = random_trace(seed, 2_000);
                let config = random_config(seed ^ 0x1234);
                let width = config.fixed.width as f64;
                let stats = Processor::new(config).run(trace.into_iter());
                assert!(stats.cpi() >= 1.0 / width - 1e-9, "seed {seed}");
            }
        }

        /// Identical inputs give identical outputs regardless of
        /// configuration randomness.
        #[test]
        fn random_run_is_a_pure_function() {
            for seed in 0..24u64 {
                let trace = random_trace(seed, 1_500);
                let config = random_config(seed);
                let a = Processor::new(config.clone()).run(trace.clone().into_iter());
                let b = Processor::new(config).run(trace.into_iter());
                assert_eq!(a, b, "seed {seed}");
            }
        }
    }
}
