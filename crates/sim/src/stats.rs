//! Summary statistics of a simulation run.

use std::error::Error;
use std::fmt;

use crate::CacheStats;

/// Why a run's CPI is unusable as a modeling response.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CpiError {
    /// No instructions were committed, so CPI is undefined.
    NoInstructions,
    /// The computed CPI is NaN or infinite.
    NonFinite(f64),
    /// The computed CPI is zero or negative — impossible for a real
    /// run, so it signals a corrupted statistics block.
    NonPositive(f64),
}

impl fmt::Display for CpiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CpiError::NoInstructions => write!(f, "no instructions committed"),
            CpiError::NonFinite(v) => write!(f, "non-finite CPI {v}"),
            CpiError::NonPositive(v) => write!(f, "non-positive CPI {v}"),
        }
    }
}

impl Error for CpiError {}

/// Validates a CPI value at the source: finite and strictly positive.
///
/// # Errors
///
/// [`CpiError::NonFinite`] for NaN/±∞, [`CpiError::NonPositive`] for
/// values ≤ 0.
pub fn validate_cpi(cpi: f64) -> Result<f64, CpiError> {
    if !cpi.is_finite() {
        return Err(CpiError::NonFinite(cpi));
    }
    if cpi <= 0.0 {
        return Err(CpiError::NonPositive(cpi));
    }
    Ok(cpi)
}

/// Statistics collected over a simulation run.
///
/// The headline metric is [`SimStats::cpi`]; the component statistics
/// (cache miss rates, branch misprediction rate, structure occupancy)
/// are the summary statistics the paper validates against `alphasim`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimStats {
    /// Committed instructions.
    pub instructions: u64,
    /// Elapsed cycles.
    pub cycles: u64,
    /// Committed loads.
    pub loads: u64,
    /// Committed stores.
    pub stores: u64,
    /// Committed branches.
    pub branches: u64,
    /// Committed single-cycle integer ALU operations.
    pub int_ops: u64,
    /// Committed integer multiplies.
    pub mul_ops: u64,
    /// Committed FP adds.
    pub fp_ops: u64,
    /// Committed FP multiplies.
    pub fp_mul_ops: u64,
    /// Mispredicted branches.
    pub mispredicts: u64,
    /// L1 instruction cache statistics.
    pub il1: CacheStats,
    /// L1 data cache statistics.
    pub dl1: CacheStats,
    /// Unified L2 statistics.
    pub l2: CacheStats,
    /// Accesses that reached DRAM.
    pub dram_accesses: u64,
    /// Cycles lost waiting for a free MSHR.
    pub mshr_wait_cycles: u64,
    /// Loads satisfied by store-to-load forwarding.
    pub forwarded_loads: u64,
    /// Cycles dispatch stalled because the ROB was full.
    pub rob_full_cycles: u64,
    /// Cycles dispatch stalled because the issue queue was full.
    pub iq_full_cycles: u64,
    /// Cycles dispatch stalled because the LSQ was full.
    pub lsq_full_cycles: u64,
    /// Sum of ROB occupancy sampled each cycle (for average occupancy).
    pub rob_occupancy_sum: u64,
}

impl SimStats {
    /// Cycles per committed instruction.
    ///
    /// # Panics
    ///
    /// Panics if no instructions were committed.
    pub fn cpi(&self) -> f64 {
        assert!(self.instructions > 0, "no instructions committed");
        self.cycles as f64 / self.instructions as f64
    }

    /// Cycles per committed instruction, validated: errors instead of
    /// panicking on an empty run, and rejects non-finite or
    /// non-positive values instead of silently returning them.
    ///
    /// # Errors
    ///
    /// See [`CpiError`].
    pub fn checked_cpi(&self) -> Result<f64, CpiError> {
        if self.instructions == 0 {
            return Err(CpiError::NoInstructions);
        }
        validate_cpi(self.cycles as f64 / self.instructions as f64)
    }

    /// Instructions per cycle.
    ///
    /// # Panics
    ///
    /// Panics if no cycles elapsed.
    pub fn ipc(&self) -> f64 {
        assert!(self.cycles > 0, "no cycles simulated");
        self.instructions as f64 / self.cycles as f64
    }

    /// Branch misprediction ratio.
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches as f64
        }
    }

    /// Average ROB occupancy per cycle.
    pub fn avg_rob_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.rob_occupancy_sum as f64 / self.cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpi_and_ipc_are_reciprocal() {
        let s = SimStats {
            instructions: 100,
            cycles: 250,
            ..SimStats::default()
        };
        assert!((s.cpi() - 2.5).abs() < 1e-12);
        assert!((s.ipc() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn rates_handle_zero_denominators() {
        let s = SimStats::default();
        assert_eq!(s.mispredict_rate(), 0.0);
        assert_eq!(s.avg_rob_occupancy(), 0.0);
    }

    #[test]
    #[should_panic(expected = "no instructions")]
    fn cpi_without_instructions_panics() {
        SimStats::default().cpi();
    }

    #[test]
    fn checked_cpi_accepts_a_normal_run() {
        let s = SimStats {
            instructions: 100,
            cycles: 250,
            ..SimStats::default()
        };
        assert_eq!(s.checked_cpi(), Ok(2.5));
    }

    #[test]
    fn checked_cpi_rejects_empty_run() {
        assert_eq!(
            SimStats::default().checked_cpi(),
            Err(CpiError::NoInstructions)
        );
    }

    #[test]
    fn checked_cpi_rejects_zero_cycles() {
        // Instructions without cycles would yield CPI 0 — corrupted.
        let s = SimStats {
            instructions: 100,
            cycles: 0,
            ..SimStats::default()
        };
        assert_eq!(s.checked_cpi(), Err(CpiError::NonPositive(0.0)));
    }

    #[test]
    fn validate_cpi_rejects_nan() {
        assert!(matches!(
            validate_cpi(f64::NAN),
            Err(CpiError::NonFinite(_))
        ));
    }

    #[test]
    fn validate_cpi_rejects_infinity() {
        assert!(matches!(
            validate_cpi(f64::INFINITY),
            Err(CpiError::NonFinite(_))
        ));
    }

    #[test]
    fn validate_cpi_rejects_negative() {
        assert_eq!(validate_cpi(-1.0), Err(CpiError::NonPositive(-1.0)));
    }

    #[test]
    fn validate_cpi_accepts_positive_finite() {
        assert_eq!(validate_cpi(0.75), Ok(0.75));
    }
}
