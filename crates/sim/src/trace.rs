//! Trace representation: the dynamic instruction stream fed to the
//! processor model.

/// Instruction classes distinguished by the timing model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Single-cycle integer ALU operation.
    IntAlu,
    /// Multi-cycle integer multiply/divide.
    IntMul,
    /// Pipelined floating-point add/sub/convert.
    FpAlu,
    /// Multi-cycle floating-point multiply/divide.
    FpMul,
    /// Memory read.
    Load,
    /// Memory write.
    Store,
    /// Conditional or unconditional control transfer.
    Branch,
}

impl Op {
    /// True for loads and stores.
    pub fn is_mem(self) -> bool {
        matches!(self, Op::Load | Op::Store)
    }
}

/// The flavor of a control transfer, which decides how the front end
/// predicts it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BranchKind {
    /// A conditional (or unconditional direct) branch: gshare + BTB.
    #[default]
    Conditional,
    /// A function call: always taken; pushes `pc + 4` on the return
    /// address stack.
    Call,
    /// A function return: always taken; target predicted by the return
    /// address stack.
    Return,
}

/// One dynamic instruction of a trace.
///
/// Register dependences are encoded positionally: `src1_dist`/`src2_dist`
/// give the distance (in dynamic instructions) back to the producing
/// instruction, or 0 for "no register source" / "producer far enough in
/// the past to be irrelevant".
///
/// # Examples
///
/// ```
/// use ppm_sim::{Instr, Op};
///
/// let add = Instr::alu(Op::IntAlu, 0x4000, 1, 2); // depends on the two previous ops
/// assert_eq!(add.op, Op::IntAlu);
/// let ld = Instr::load(0x4004, 0xdead_bee0, 1, 0);
/// assert!(ld.op.is_mem());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Instr {
    /// Program counter of the instruction.
    pub pc: u64,
    /// Instruction class.
    pub op: Op,
    /// Distance to the first register producer (0 = none).
    pub src1_dist: u32,
    /// Distance to the second register producer (0 = none).
    pub src2_dist: u32,
    /// Effective address, for loads and stores.
    pub mem_addr: u64,
    /// Actual direction, for branches.
    pub taken: bool,
    /// Actual target, for branches.
    pub target: u64,
    /// How the front end should predict this branch (ignored for
    /// non-branch instructions).
    pub kind: BranchKind,
}

impl Instr {
    /// A non-memory, non-branch instruction.
    pub fn alu(op: Op, pc: u64, src1_dist: u32, src2_dist: u32) -> Self {
        debug_assert!(!op.is_mem() && op != Op::Branch);
        Instr {
            pc,
            op,
            src1_dist,
            src2_dist,
            mem_addr: 0,
            taken: false,
            target: 0,
            kind: BranchKind::Conditional,
        }
    }

    /// A load from `addr`.
    pub fn load(pc: u64, addr: u64, src1_dist: u32, src2_dist: u32) -> Self {
        Instr {
            pc,
            op: Op::Load,
            src1_dist,
            src2_dist,
            mem_addr: addr,
            taken: false,
            target: 0,
            kind: BranchKind::Conditional,
        }
    }

    /// A store to `addr`.
    pub fn store(pc: u64, addr: u64, src1_dist: u32, src2_dist: u32) -> Self {
        Instr {
            pc,
            op: Op::Store,
            src1_dist,
            src2_dist,
            mem_addr: addr,
            taken: false,
            target: 0,
            kind: BranchKind::Conditional,
        }
    }

    /// A conditional branch with its resolved direction and target.
    pub fn branch(pc: u64, taken: bool, target: u64, src1_dist: u32) -> Self {
        Instr {
            pc,
            op: Op::Branch,
            src1_dist,
            src2_dist: 0,
            mem_addr: 0,
            taken,
            target,
            kind: BranchKind::Conditional,
        }
    }

    /// A function call to `target`.
    pub fn call(pc: u64, target: u64) -> Self {
        Instr {
            kind: BranchKind::Call,
            ..Instr::branch(pc, true, target, 0)
        }
    }

    /// A function return to `target`.
    pub fn ret(pc: u64, target: u64) -> Self {
        Instr {
            kind: BranchKind::Return,
            ..Instr::branch(pc, true, target, 0)
        }
    }
}

/// A source of dynamic instructions.
///
/// Implemented by the synthetic workload generators in `ppm-workload`;
/// any iterator of [`Instr`] works. The stream must not depend on the
/// processor configuration.
pub trait TraceSource: Iterator<Item = Instr> {}

impl<T: Iterator<Item = Instr>> TraceSource for T {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_classes() {
        assert!(Op::Load.is_mem());
        assert!(Op::Store.is_mem());
        assert!(!Op::Branch.is_mem());
        assert!(!Op::IntAlu.is_mem());
    }

    #[test]
    fn constructors_fill_fields() {
        let b = Instr::branch(0x100, true, 0x200, 3);
        assert_eq!(b.op, Op::Branch);
        assert!(b.taken);
        assert_eq!(b.target, 0x200);
        assert_eq!(b.src1_dist, 3);

        let s = Instr::store(0x104, 0xff00, 1, 2);
        assert_eq!(s.mem_addr, 0xff00);
        assert_eq!(s.src2_dist, 2);
    }

    #[test]
    fn any_iterator_is_a_trace_source() {
        fn takes_source<T: TraceSource>(t: T) -> usize {
            t.count()
        }
        let v = vec![Instr::alu(Op::IntAlu, 0, 0, 0); 5];
        assert_eq!(takes_source(v.into_iter()), 5);
    }
}
