//! Process CPU-time readings for span records.
//!
//! On Linux the user+system jiffies come from `/proc/self/stat`; the
//! kernel's clock-tick rate is fixed at 100 Hz on every mainstream
//! distribution, so one tick is 10 ms. Elsewhere (or when the proc
//! file is unreadable) readings are `None` and spans simply omit their
//! CPU column — wall-clock timing is never affected.

/// Total process CPU time (user + system, all threads) in
/// microseconds, or `None` when the platform offers no reading.
///
/// Granularity is one scheduler tick (10 ms on Linux), so short spans
/// legitimately report a zero delta.
pub fn process_cpu_us() -> Option<u64> {
    read_proc_self_stat()
}

#[cfg(target_os = "linux")]
fn read_proc_self_stat() -> Option<u64> {
    const TICK_US: u64 = 10_000; // 100 Hz kernel tick
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    // Field 2 (comm) may contain spaces; everything after the closing
    // paren is space-separated, with utime/stime at fields 14 and 15
    // (1-based), i.e. indices 11 and 12 after the paren.
    let rest = stat.rsplit_once(')')?.1;
    let mut fields = rest.split_ascii_whitespace();
    let utime: u64 = fields.nth(11)?.parse().ok()?;
    let stime: u64 = fields.next()?.parse().ok()?;
    Some((utime + stime) * TICK_US)
}

#[cfg(not(target_os = "linux"))]
fn read_proc_self_stat() -> Option<u64> {
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(target_os = "linux")]
    fn cpu_time_is_monotone() {
        let a = process_cpu_us().expect("/proc/self/stat readable");
        // Burn a little CPU so the reading can only move forward.
        let mut x = 0u64;
        for i in 0..2_000_000u64 {
            x = x.wrapping_add(i).rotate_left(7);
        }
        assert!(x != 1); // keep the loop alive
        let b = process_cpu_us().expect("/proc/self/stat readable");
        assert!(b >= a, "cpu time went backwards: {a} -> {b}");
    }
}
