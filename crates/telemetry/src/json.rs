//! Minimal JSON serialization for telemetry records.
//!
//! Only what the JSONL exporter needs: string escaping per RFC 8259 and
//! a small value enum for event fields. Not a general-purpose JSON
//! library — there is deliberately no parser.

use std::fmt::Write;

/// A scalar field value attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point. Non-finite values serialize as `null` (JSON has
    /// no NaN/Infinity).
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String (escaped on output).
    Str(String),
}

impl Value {
    /// Appends this value's JSON representation to `out`.
    pub fn write_json(&self, out: &mut String) {
        match self {
            Value::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::F64(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Value::Bool(v) => {
                let _ = write!(out, "{v}");
            }
            Value::Str(s) => write_json_string(out, s),
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// Appends `s` as a quoted, escaped JSON string.
///
/// Escapes the two mandatory characters (`"` and `\`), the common
/// control-character shorthands, and any other control character as
/// `\u00XX`.
pub fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Returns `s` as a quoted, escaped JSON string.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    write_json_string(&mut out, s);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn escaped(s: &str) -> String {
        json_string(s)
    }

    #[test]
    fn plain_strings_are_quoted_verbatim() {
        assert_eq!(escaped("stage.sampling"), "\"stage.sampling\"");
        assert_eq!(escaped(""), "\"\"");
    }

    #[test]
    fn quotes_and_backslashes_are_escaped() {
        assert_eq!(escaped("a\"b"), "\"a\\\"b\"");
        assert_eq!(escaped("a\\b"), "\"a\\\\b\"");
        assert_eq!(escaped("C:\\path\"x\""), "\"C:\\\\path\\\"x\\\"\"");
    }

    #[test]
    fn control_characters_use_shorthand_or_unicode() {
        assert_eq!(escaped("a\nb"), "\"a\\nb\"");
        assert_eq!(escaped("a\tb"), "\"a\\tb\"");
        assert_eq!(escaped("a\rb"), "\"a\\rb\"");
        assert_eq!(escaped("a\u{08}b"), "\"a\\bb\"");
        assert_eq!(escaped("a\u{0c}b"), "\"a\\fb\"");
        assert_eq!(escaped("a\u{01}b"), "\"a\\u0001b\"");
        assert_eq!(escaped("a\u{1f}b"), "\"a\\u001fb\"");
    }

    #[test]
    fn unicode_passes_through_unescaped() {
        assert_eq!(escaped("αβ→é"), "\"αβ→é\"");
    }

    #[test]
    fn values_serialize() {
        let mut s = String::new();
        Value::U64(42).write_json(&mut s);
        s.push(' ');
        Value::I64(-3).write_json(&mut s);
        s.push(' ');
        Value::F64(1.5).write_json(&mut s);
        s.push(' ');
        Value::Bool(true).write_json(&mut s);
        s.push(' ');
        Value::Str("x\"y".into()).write_json(&mut s);
        assert_eq!(s, "42 -3 1.5 true \"x\\\"y\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut s = String::new();
            Value::F64(v).write_json(&mut s);
            assert_eq!(s, "null");
        }
    }
}
