//! # ppm-telemetry
//!
//! Zero-dependency tracing, metrics, and profiling for the
//! BuildRBFmodel pipeline.
//!
//! The crate provides three instrument kinds held in a global
//! [`Registry`] — [`Counter`]s, [`Gauge`]s, and log-bucketed
//! [`Histogram`]s with quantile queries — plus RAII [`Span`] timers
//! that nest per thread, and discrete [`event`]s with typed fields.
//! Output goes through pluggable [`Sink`]s: a human-readable stderr
//! progress reporter and a JSON-lines exporter ship in-crate.
//!
//! Everything is hand-rolled on `std`; there are no dependencies.
//!
//! ## Usage
//!
//! ```
//! use ppm_telemetry as tel;
//!
//! tel::counter("sampling.discrepancy_evals").add(10);
//! tel::gauge("rbf.selected_aicc").set(-41.2);
//! {
//!     let _span = tel::span("stage.sampling");
//!     tel::event("lhs.selected", &[("score", 0.012.into())]);
//! } // span duration recorded on drop
//! ```
//!
//! ## Cost when idle
//!
//! Instruments are single atomics; with no sinks installed, events and
//! span closings return after one relaxed atomic load. Call sites never
//! need to be conditionally compiled out.

mod json;
mod registry;
mod sink;
mod span;

pub use json::{json_string, Value};
pub use registry::{Counter, Gauge, Histogram, MetricKind, MetricRecord, Registry};
pub use sink::{BufferSink, JsonlSink, Record, Sink, StderrSink, Verbosity};
pub use span::{current_depth, current_span, Span};

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

static REGISTRY: Registry = Registry::new();
static ENABLED: AtomicBool = AtomicBool::new(true);
static SINKS: Mutex<Vec<Box<dyn Sink>>> = Mutex::new(Vec::new());
/// Mirrors `SINKS.len()` so the no-sink fast path skips the lock.
static SINK_COUNT: AtomicUsize = AtomicUsize::new(0);

/// The global instrument registry.
pub fn registry() -> &'static Registry {
    &REGISTRY
}

/// The global counter named `name`. Hot paths should cache the handle.
pub fn counter(name: &str) -> std::sync::Arc<Counter> {
    REGISTRY.counter(name)
}

/// The global gauge named `name`.
pub fn gauge(name: &str) -> std::sync::Arc<Gauge> {
    REGISTRY.gauge(name)
}

/// The global histogram named `name`.
pub fn histogram(name: &str) -> std::sync::Arc<Histogram> {
    REGISTRY.histogram(name)
}

/// Opens a global span named `name` (see [`Span::enter`]).
pub fn span(name: &str) -> Span {
    Span::enter(name)
}

/// Turns span/event collection on or off. Metrics handles keep
/// working either way; disabled spans and events become no-ops.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether span/event collection is on.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Installs a sink at the end of the dispatch order.
pub fn add_sink(sink: Box<dyn Sink>) {
    let mut sinks = SINKS.lock().expect("sink list poisoned");
    sinks.push(sink);
    SINK_COUNT.store(sinks.len(), Ordering::Release);
}

/// Removes every installed sink, flushing each first.
pub fn clear_sinks() {
    let mut sinks = SINKS.lock().expect("sink list poisoned");
    for s in sinks.iter_mut() {
        s.flush();
    }
    sinks.clear();
    SINK_COUNT.store(0, Ordering::Release);
}

/// Flushes every installed sink (e.g. before process exit).
pub fn flush_sinks() {
    for s in SINKS.lock().expect("sink list poisoned").iter_mut() {
        s.flush();
    }
}

/// Sends a record to every sink whose verbosity admits it.
pub(crate) fn dispatch(rec: &Record) {
    if SINK_COUNT.load(Ordering::Acquire) == 0 {
        return;
    }
    for s in SINKS.lock().expect("sink list poisoned").iter_mut() {
        if rec.visible_at(s.verbosity()) {
            s.record(rec);
        }
    }
}

/// Emits a discrete event with the given fields at the current span
/// depth. No-op when telemetry is disabled.
pub fn event(name: &str, fields: &[(&str, Value)]) {
    if !enabled() || SINK_COUNT.load(Ordering::Acquire) == 0 {
        return;
    }
    dispatch(&Record::Event {
        name: name.to_string(),
        fields: fields
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect(),
        depth: current_depth(),
    });
}

/// Snapshots every instrument in the global registry and sends the
/// resulting metric records to all sinks, then flushes.
pub fn export_metrics() {
    for m in REGISTRY.snapshot() {
        dispatch(&Record::Metric(m));
    }
    flush_sinks();
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that install global sinks.
    static GLOBAL_SINK_TEST: Mutex<()> = Mutex::new(());

    fn with_buffer<F: FnOnce()>(f: F) -> Vec<Record> {
        let _guard = GLOBAL_SINK_TEST
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        clear_sinks();
        let buf = BufferSink::new();
        add_sink(Box::new(buf.clone()));
        f();
        clear_sinks();
        buf.records()
    }

    #[test]
    fn spans_close_in_nesting_order_with_parents() {
        let records = with_buffer(|| {
            let _outer = span("t.outer");
            let _mid = span("t.mid");
            let inner = span("t.inner");
            drop(inner);
        });
        // Other tests may run concurrently on other threads; keep only
        // this test's spans (span stacks are thread-local, so depth and
        // parent are still ours alone).
        let spans: Vec<(String, usize, Option<String>)> = records
            .iter()
            .filter_map(|r| match r {
                Record::Span {
                    name,
                    depth,
                    parent,
                    ..
                } if name.starts_with("t.") => Some((name.clone(), *depth, parent.clone())),
                _ => None,
            })
            .collect();
        assert_eq!(
            spans,
            vec![
                ("t.inner".to_string(), 2, Some("t.mid".to_string())),
                ("t.mid".to_string(), 1, Some("t.outer".to_string())),
                ("t.outer".to_string(), 0, None),
            ]
        );
    }

    #[test]
    fn span_durations_land_in_the_registry() {
        {
            let _s = span("reg_check");
        }
        let h = histogram("span.reg_check.us");
        assert!(h.count() >= 1);
    }

    #[test]
    fn events_carry_fields_and_depth() {
        let records = with_buffer(|| {
            let _s = span("t.evt_parent");
            event("t.evt", &[("n", 3u64.into()), ("label", "a\"b".into())]);
        });
        let evt = records
            .iter()
            .find_map(|r| match r {
                Record::Event {
                    name,
                    fields,
                    depth,
                } if name == "t.evt" => Some((fields.clone(), *depth)),
                _ => None,
            })
            .expect("event captured");
        assert_eq!(evt.1, 1);
        assert_eq!(evt.0[0].0, "n");
        assert_eq!(evt.0[0].1, Value::U64(3));
        assert_eq!(evt.0[1].1, Value::Str("a\"b".to_string()));
    }

    #[test]
    fn disabled_telemetry_emits_nothing() {
        let records = with_buffer(|| {
            set_enabled(false);
            {
                let _s = span("t.disabled");
            }
            event("t.disabled_evt", &[]);
            set_enabled(true);
        });
        assert!(records.iter().all(|r| match r {
            Record::Span { name, .. } => name != "t.disabled",
            Record::Event { name, .. } => name != "t.disabled_evt",
            Record::Metric(_) => true,
        }));
    }

    #[test]
    fn export_metrics_reaches_sinks() {
        counter("t.export_counter").add(7);
        let records = with_buffer(export_metrics);
        assert!(records.iter().any(|r| matches!(
            r,
            Record::Metric(m) if m.name == "t.export_counter" && m.value == Some(7)
        )));
    }
}
