//! # ppm-telemetry
//!
//! Zero-dependency tracing, metrics, and profiling for the
//! BuildRBFmodel pipeline.
//!
//! The crate provides three instrument kinds held in a global
//! [`Registry`] — [`Counter`]s, [`Gauge`]s, and log-bucketed
//! [`Histogram`]s with quantile queries — plus RAII [`Span`] timers
//! that nest per thread, and discrete [`event`]s with typed fields.
//! Output goes through pluggable [`Sink`]s: a human-readable stderr
//! progress reporter and a JSON-lines exporter ship in-crate.
//!
//! Everything is hand-rolled on `std`; there are no dependencies.
//!
//! ## Usage
//!
//! ```
//! use ppm_telemetry as tel;
//!
//! tel::counter("sampling.discrepancy_evals").add(10);
//! tel::gauge("rbf.selected_aicc").set(-41.2);
//! {
//!     let _span = tel::span("stage.sampling");
//!     tel::event("lhs.selected", &[("score", 0.012.into())]);
//! } // span duration recorded on drop
//! ```
//!
//! ## Cost when idle
//!
//! Instruments are single atomics; with no sinks installed, events and
//! span closings return after one relaxed atomic load. Call sites never
//! need to be conditionally compiled out.

mod cputime;
mod json;
mod registry;
mod ring;
mod sink;
mod span;

pub use cputime::process_cpu_us;
pub use json::{json_string, Value};
pub use registry::{Counter, Gauge, Histogram, MetricKind, MetricRecord, Registry};
pub use ring::{EventRing, RingEvent};
pub use sink::{BufferSink, JsonlSink, Level, Record, Sink, StderrSink, Verbosity};
pub use span::{
    current_depth, current_span, current_stage, monotonic_us, thread_ordinal, ContextGuard, Span,
    TelemetryContext,
};

use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

static REGISTRY: Registry = Registry::new();
static ENABLED: AtomicBool = AtomicBool::new(true);
static SINKS: Mutex<Vec<Box<dyn Sink>>> = Mutex::new(Vec::new());
/// Mirrors `SINKS.len()` so the no-sink fast path skips the lock.
// atomic-policy(SINK_COUNT): Release, Acquire — the count is published
// after the sink vector is mutated under the lock; dispatch()'s
// fast-path load must observe the store that made the vector non-empty
// before it skips the lock.
static SINK_COUNT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Per-thread registry override installed by [`Registry::scoped`] or
    /// an attached [`TelemetryContext`]. `None` means the global
    /// registry is active.
    static REGISTRY_OVERRIDE: RefCell<Option<Arc<Registry>>> = const { RefCell::new(None) };
}

/// Swaps this thread's registry override, returning the previous one.
pub(crate) fn set_registry_override(r: Option<Arc<Registry>>) -> Option<Arc<Registry>> {
    REGISTRY_OVERRIDE.with(|o| std::mem::replace(&mut *o.borrow_mut(), r))
}

/// This thread's registry override, if any.
pub(crate) fn registry_override() -> Option<Arc<Registry>> {
    REGISTRY_OVERRIDE.with(|o| o.borrow().clone())
}

/// Runs `f` against the registry active on this thread: the scoped
/// override when one is installed, else the global registry.
pub(crate) fn with_active_registry<T>(f: impl FnOnce(&Registry) -> T) -> T {
    match registry_override() {
        Some(r) => f(&r),
        None => f(&REGISTRY),
    }
}

/// The global instrument registry (ignores scoped overrides).
pub fn registry() -> &'static Registry {
    &REGISTRY
}

/// The counter named `name` in the active registry. Hot paths should
/// cache the handle.
pub fn counter(name: &str) -> std::sync::Arc<Counter> {
    with_active_registry(|r| r.counter(name))
}

/// The gauge named `name` in the active registry.
pub fn gauge(name: &str) -> std::sync::Arc<Gauge> {
    with_active_registry(|r| r.gauge(name))
}

/// The histogram named `name` in the active registry.
pub fn histogram(name: &str) -> std::sync::Arc<Histogram> {
    with_active_registry(|r| r.histogram(name))
}

/// Snapshots every instrument in the active registry, sorted by kind
/// then name (same order [`export_metrics`] emits).
pub fn snapshot() -> Vec<MetricRecord> {
    with_active_registry(|r| r.snapshot())
}

/// Captures this thread's telemetry context (open span stack plus any
/// scoped-registry override) for propagation into worker threads; see
/// [`TelemetryContext::attach`].
pub fn current_context() -> TelemetryContext {
    span::snapshot_context()
}

/// An RAII guard that redirects this thread's instrument lookups to a
/// private [`Registry`]. Created by [`Registry::scoped`].
///
/// While the guard lives, `counter`/`gauge`/`histogram`/`snapshot` (and
/// span-duration histograms) on this thread hit the private registry
/// instead of the global one, so concurrent tests can't bleed counters
/// into each other. Worker threads spawned while the guard is active
/// inherit it through [`current_context`] / [`TelemetryContext::attach`].
///
/// The guard is deliberately `!Send`: it manages thread-local state and
/// must drop on the thread that created it.
#[derive(Debug)]
pub struct ScopedRegistry {
    registry: Arc<Registry>,
    prev: Option<Arc<Registry>>,
    /// Keeps the guard on its creating thread.
    _not_send: PhantomData<*const ()>,
}

impl ScopedRegistry {
    /// A shared handle to the scoped registry (e.g. to move into a
    /// worker context manually).
    pub fn handle(&self) -> Arc<Registry> {
        Arc::clone(&self.registry)
    }

    /// Snapshots the scoped registry's instruments.
    pub fn snapshot(&self) -> Vec<MetricRecord> {
        self.registry.snapshot()
    }
}

impl std::ops::Deref for ScopedRegistry {
    type Target = Registry;

    fn deref(&self) -> &Registry {
        &self.registry
    }
}

impl Drop for ScopedRegistry {
    fn drop(&mut self) {
        set_registry_override(self.prev.take());
    }
}

impl Registry {
    /// Installs a fresh, private registry as this thread's instrument
    /// target and returns the guard controlling its lifetime.
    ///
    /// ```
    /// let scoped = ppm_telemetry::Registry::scoped();
    /// ppm_telemetry::counter("isolated.count").inc();
    /// assert_eq!(scoped.counter("isolated.count").get(), 1);
    /// drop(scoped); // global registry active again
    /// ```
    pub fn scoped() -> ScopedRegistry {
        let registry = Arc::new(Registry::new());
        let prev = set_registry_override(Some(Arc::clone(&registry)));
        ScopedRegistry {
            registry,
            prev,
            _not_send: PhantomData,
        }
    }
}

/// Opens a global span named `name` (see [`Span::enter`]).
pub fn span(name: &str) -> Span {
    Span::enter(name)
}

/// Turns span/event collection on or off. Metrics handles keep
/// working either way; disabled spans and events become no-ops.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether span/event collection is on.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Installs a sink at the end of the dispatch order.
pub fn add_sink(sink: Box<dyn Sink>) {
    let mut sinks = SINKS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    sinks.push(sink);
    SINK_COUNT.store(sinks.len(), Ordering::Release);
}

/// Removes every installed sink, flushing each first. The sinks are
/// taken out under the lock but flushed after it is released, so a
/// slow flush (a sink writing to a file or socket) cannot stall
/// concurrent [`dispatch`] callers.
pub fn clear_sinks() {
    let mut taken = {
        let mut sinks = SINKS
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        SINK_COUNT.store(0, Ordering::Release);
        std::mem::take(&mut *sinks)
    };
    for s in taken.iter_mut() {
        s.flush();
    }
}

/// Flushes every installed sink (e.g. before process exit).
pub fn flush_sinks() {
    for s in SINKS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .iter_mut()
    {
        // Flushing under the lock is deliberate: it serializes with
        // in-flight dispatch() so the final flush cannot race a record
        // mid-write, and this runs once, at process exit.
        // analyze:allow(lock-order)
        s.flush();
    }
}

/// Sends a record to every sink whose verbosity admits it.
pub(crate) fn dispatch(rec: &Record) {
    if SINK_COUNT.load(Ordering::Acquire) == 0 {
        return;
    }
    for s in SINKS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .iter_mut()
    {
        if rec.visible_at(s.verbosity()) {
            s.record(rec);
        }
    }
}

/// Emits a discrete [`Level::Info`] event with the given fields at the
/// current span depth. No-op when telemetry is disabled.
pub fn event(name: &str, fields: &[(&str, Value)]) {
    event_at(Level::Info, name, fields);
}

/// Emits a discrete event at an explicit severity. `Warn` and `Error`
/// events stay visible to `Progress` sinks even when nested; prefer the
/// [`event!`] macro at call sites for the key/value sugar.
pub fn event_at(level: Level, name: &str, fields: &[(&str, Value)]) {
    if !enabled() || SINK_COUNT.load(Ordering::Acquire) == 0 {
        return;
    }
    dispatch(&Record::Event {
        name: name.to_string(),
        level,
        fields: fields
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect(),
        depth: current_depth(),
    });
}

/// Emits a leveled event with `key => value` field sugar:
///
/// ```
/// use ppm_telemetry::Level;
/// ppm_telemetry::event!(Level::Warn, "live.client_error", "cause" => "reset", "port" => 8080u64);
/// ```
///
/// Values go through [`Value::from`], so integers, floats, booleans,
/// `&str`, and `String` all work directly.
#[macro_export]
macro_rules! event {
    ($level:expr, $target:expr $(, $k:expr => $v:expr)* $(,)?) => {
        $crate::event_at($level, $target, &[$(($k, $crate::Value::from($v))),*])
    };
}

/// Snapshots every instrument in the active registry and sends the
/// resulting metric records to all sinks, then flushes.
pub fn export_metrics() {
    for m in snapshot() {
        dispatch(&Record::Metric(m));
    }
    flush_sinks();
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that install global sinks.
    static GLOBAL_SINK_TEST: Mutex<()> = Mutex::new(());

    fn with_buffer<F: FnOnce()>(f: F) -> Vec<Record> {
        let _guard = GLOBAL_SINK_TEST
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        clear_sinks();
        let buf = BufferSink::new();
        add_sink(Box::new(buf.clone()));
        f();
        clear_sinks();
        buf.records()
    }

    #[test]
    fn spans_close_in_nesting_order_with_parents() {
        let records = with_buffer(|| {
            let _outer = span("t.outer");
            let _mid = span("t.mid");
            let inner = span("t.inner");
            drop(inner);
        });
        // Other tests may run concurrently on other threads; keep only
        // this test's spans (span stacks are thread-local, so depth and
        // parent are still ours alone).
        let spans: Vec<(String, usize, Option<String>)> = records
            .iter()
            .filter_map(|r| match r {
                Record::Span {
                    name,
                    depth,
                    parent,
                    ..
                } if name.starts_with("t.") => Some((name.clone(), *depth, parent.clone())),
                _ => None,
            })
            .collect();
        assert_eq!(
            spans,
            vec![
                ("t.inner".to_string(), 2, Some("t.mid".to_string())),
                ("t.mid".to_string(), 1, Some("t.outer".to_string())),
                ("t.outer".to_string(), 0, None),
            ]
        );
    }

    #[test]
    fn span_durations_land_in_the_registry() {
        {
            let _s = span("reg_check");
        }
        let h = histogram("span.reg_check.us");
        assert!(h.count() >= 1);
    }

    #[test]
    fn events_carry_fields_and_depth() {
        let records = with_buffer(|| {
            let _s = span("t.evt_parent");
            event("t.evt", &[("n", 3u64.into()), ("label", "a\"b".into())]);
        });
        let evt = records
            .iter()
            .find_map(|r| match r {
                Record::Event {
                    name,
                    fields,
                    depth,
                    ..
                } if name == "t.evt" => Some((fields.clone(), *depth)),
                _ => None,
            })
            .expect("event captured");
        assert_eq!(evt.1, 1);
        assert_eq!(evt.0[0].0, "n");
        assert_eq!(evt.0[0].1, Value::U64(3));
        assert_eq!(evt.0[1].1, Value::Str("a\"b".to_string()));
    }

    #[test]
    fn disabled_telemetry_emits_nothing() {
        let records = with_buffer(|| {
            set_enabled(false);
            {
                let _s = span("t.disabled");
            }
            event("t.disabled_evt", &[]);
            set_enabled(true);
        });
        assert!(records.iter().all(|r| match r {
            Record::Span { name, .. } => name != "t.disabled",
            Record::Event { name, .. } => name != "t.disabled_evt",
            Record::Metric(_) => true,
        }));
    }

    #[test]
    fn export_metrics_reaches_sinks() {
        counter("t.export_counter").add(7);
        let records = with_buffer(export_metrics);
        assert!(records.iter().any(|r| matches!(
            r,
            Record::Metric(m) if m.name == "t.export_counter" && m.value == Some(7)
        )));
    }

    #[test]
    fn scoped_registry_isolates_instruments() {
        let global_before = registry().counter("t.scoped_iso").get();
        {
            let scoped = Registry::scoped();
            counter("t.scoped_iso").add(5);
            gauge("t.scoped_gauge").set(1.5);
            histogram("t.scoped_hist").record(10);
            assert_eq!(scoped.counter("t.scoped_iso").get(), 5);
            let snap = snapshot();
            assert!(snap.iter().any(|m| m.name == "t.scoped_iso"));
            // The global registry never saw the increments.
            assert_eq!(registry().counter("t.scoped_iso").get(), global_before);
        }
        // Guard dropped: lookups hit the global registry again.
        counter("t.scoped_iso").inc();
        assert_eq!(registry().counter("t.scoped_iso").get(), global_before + 1);
    }

    #[test]
    fn scoped_registries_nest_and_restore() {
        let outer = Registry::scoped();
        counter("t.nest").add(1);
        {
            let inner = Registry::scoped();
            counter("t.nest").add(10);
            assert_eq!(inner.counter("t.nest").get(), 10);
        }
        counter("t.nest").add(1);
        assert_eq!(outer.counter("t.nest").get(), 2);
    }

    #[test]
    fn scoped_registry_propagates_to_workers_via_context() {
        let scoped = Registry::scoped();
        let ctx = current_context();
        std::thread::spawn(move || {
            let _g = ctx.attach();
            counter("t.scoped_worker").add(3);
        })
        .join()
        .unwrap();
        assert_eq!(scoped.counter("t.scoped_worker").get(), 3);
    }

    #[test]
    fn span_durations_respect_scoped_registry() {
        let scoped = Registry::scoped();
        {
            let _s = span("scoped_span_check");
        }
        assert_eq!(scoped.histogram("span.scoped_span_check.us").count(), 1);
        assert_eq!(registry().histogram("span.scoped_span_check.us").count(), 0);
    }
}
