//! A thread-safe registry of named counters, gauges, and histograms.
//!
//! All instruments are lock-free after the first lookup: counters and
//! gauges are single atomics, histograms are arrays of atomic buckets.
//! The registry itself interns instruments by name behind a mutex, so
//! call sites on hot paths should hold on to the returned handle rather
//! than re-looking it up per operation.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::json::write_json_string;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins floating-point measurement.
#[derive(Debug)]
pub struct Gauge(AtomicU64);

impl Default for Gauge {
    fn default() -> Self {
        Gauge::new()
    }
}

impl Gauge {
    /// Creates a gauge at zero.
    pub const fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds `d` (which may be negative) to the gauge atomically — the
    /// up/down form used for liveness counts such as
    /// `exec.workers_live`.
    pub fn add(&self, d: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + d).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// The last value set (0.0 if never set).
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Number of exact buckets before log bucketing starts.
const LINEAR_BUCKETS: usize = 16;
/// Sub-buckets per power-of-two octave.
const SUBS: usize = 4;
/// First octave covered by the log range: values >= 2^4.
const FIRST_OCTAVE: u32 = 4;
/// Total bucket count: 16 exact + 60 octaves x 4 sub-buckets.
const NUM_BUCKETS: usize = LINEAR_BUCKETS + (64 - FIRST_OCTAVE as usize) * SUBS;

/// A log-bucketed histogram of `u64` observations (typically
/// microseconds or small cardinalities).
///
/// Values below 16 get exact buckets; larger values share a bucket with
/// others in the same quarter-octave, bounding the relative quantile
/// error at ~12.5%. Recording is a single atomic increment per bucket
/// plus atomic count/sum/min/max updates — safe and cheap under
/// concurrency.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    /// Worst tagged sample since the last [`Histogram::take_exemplar`]:
    /// `(value, tag)`. The tag is typically a trace ID, so a scrape can
    /// jump from "p99 spiked" straight to the worst request's timeline.
    exemplar: Mutex<Option<(u64, String)>>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            exemplar: Mutex::new(None),
        }
    }

    /// The bucket index for a value.
    pub fn bucket_index(v: u64) -> usize {
        if v < LINEAR_BUCKETS as u64 {
            return v as usize;
        }
        let octave = 63 - v.leading_zeros(); // >= FIRST_OCTAVE
        let sub = ((v >> (octave - 2)) & (SUBS as u64 - 1)) as usize;
        LINEAR_BUCKETS + (octave - FIRST_OCTAVE) as usize * SUBS + sub
    }

    /// The value range `[lo, hi)` covered by bucket `idx`. The top
    /// octave's ranges saturate at `u64::MAX`, where `hi` is inclusive.
    pub fn bucket_bounds(idx: usize) -> (u64, u64) {
        if idx < LINEAR_BUCKETS {
            return (idx as u64, idx as u64 + 1);
        }
        let rel = idx - LINEAR_BUCKETS;
        let octave = FIRST_OCTAVE + (rel / SUBS) as u32;
        let sub = (rel % SUBS) as u64;
        let width = 1u64 << (octave - 2); // octave span / SUBS
        let lo = (1u64 << octave).saturating_add(sub.saturating_mul(width));
        (lo, lo.saturating_add(width))
    }

    /// Records one observation.
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records one observation and tags it: if `v` is the worst value
    /// seen since the last [`Histogram::take_exemplar`], the `(v, tag)`
    /// pair is retained as this window's exemplar. One short mutex
    /// critical section per call — meant for request-grained paths
    /// (serving latency), not inner simulation loops.
    pub fn record_tagged(&self, v: u64, tag: &str) {
        self.record(v);
        let mut ex = self
            .exemplar
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        match ex.as_ref() {
            Some((worst, _)) if *worst >= v => {}
            _ => *ex = Some((v, tag.to_string())),
        }
    }

    /// Takes (and clears) the worst tagged sample since the previous
    /// call, starting a fresh exemplar window. `None` when nothing was
    /// recorded via [`Histogram::record_tagged`] this window.
    pub fn take_exemplar(&self) -> Option<(u64, String)> {
        self.exemplar
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take()
    }

    /// The current window's worst tagged sample without clearing it.
    pub fn peek_exemplar(&self) -> Option<(u64, String)> {
        self.exemplar
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest observation, or `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count() > 0).then(|| self.min.load(Ordering::Relaxed))
    }

    /// Largest observation, or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count() > 0).then(|| self.max.load(Ordering::Relaxed))
    }

    /// Mean observation, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        let n = self.count();
        (n > 0).then(|| self.sum() as f64 / n as f64)
    }

    /// The non-empty buckets as `(le, cumulative_count)` pairs, in
    /// ascending order — the Prometheus cumulative-bucket form. `le` is
    /// the bucket's inclusive integer upper bound (observations are
    /// `u64`, so the count of values `<= le` equals the count below the
    /// bucket's exclusive bound). Empty buckets are skipped; cumulative
    /// counts stay monotone regardless. Lock-free: one relaxed load per
    /// bucket, concurrent recording never blocks a scrape.
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (idx, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c > 0 {
                cum += c;
                let (lo, hi) = Self::bucket_bounds(idx);
                // Top-octave bounds saturate: `hi` is already inclusive
                // there, everywhere else the integer below `hi` is.
                let le = if hi == u64::MAX { hi } else { hi - 1 };
                debug_assert!(le >= lo);
                out.push((le, cum));
            }
        }
        out
    }

    /// The `q`-quantile (`0.0..=1.0`) as a representative value of the
    /// bucket containing it, clamped to the observed min/max. `None`
    /// when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        let n = self.count();
        if n == 0 {
            return None;
        }
        let target = ((q * n as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (idx, b) in self.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= target {
                let (lo, hi) = Self::bucket_bounds(idx);
                // Representative value: bucket midpoint, clamped to the
                // actually observed range.
                let mid = lo + (hi - lo - 1) / 2;
                let lo_clamp = self.min.load(Ordering::Relaxed);
                let hi_clamp = self.max.load(Ordering::Relaxed);
                return Some(mid.clamp(lo_clamp, hi_clamp));
            }
        }
        self.max()
    }
}

/// Which kind of instrument a [`MetricRecord`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic counter.
    Counter,
    /// Last-value gauge.
    Gauge,
    /// Log-bucketed histogram.
    Histogram,
}

/// A point-in-time reading of one instrument.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricRecord {
    /// Instrument name.
    pub name: String,
    /// Instrument kind.
    pub kind: MetricKind,
    /// Counter value (counters only).
    pub value: Option<u64>,
    /// Gauge value (gauges only).
    pub gauge: Option<f64>,
    /// `(count, sum, min, max, p50, p95, p99)` (histograms only).
    pub hist: Option<(u64, u64, u64, u64, u64, u64, u64)>,
    /// Non-empty cumulative buckets as `(le, cumulative_count)`
    /// (histograms only; see [`Histogram::cumulative_buckets`]). Not
    /// part of the JSONL line — consumed by the live plane's
    /// Prometheus exposition.
    pub buckets: Option<Vec<(u64, u64)>>,
    /// The current window's worst tagged sample `(value, tag)`
    /// (histograms only; see [`Histogram::record_tagged`]). Snapshots
    /// peek without clearing — the owner of the window (e.g. the serve
    /// `/metrics` handler) decides when to call
    /// [`Histogram::take_exemplar`]. Not part of the JSONL line.
    pub exemplar: Option<(u64, String)>,
}

impl MetricRecord {
    /// Serializes the record as one JSONL `metric` line (no trailing
    /// newline).
    pub fn to_json_line(&self) -> String {
        let mut s = String::with_capacity(96);
        s.push_str("{\"t\":\"metric\",\"kind\":");
        match self.kind {
            MetricKind::Counter => s.push_str("\"counter\""),
            MetricKind::Gauge => s.push_str("\"gauge\""),
            MetricKind::Histogram => s.push_str("\"histogram\""),
        }
        s.push_str(",\"name\":");
        write_json_string(&mut s, &self.name);
        match self.kind {
            MetricKind::Counter => {
                s.push_str(&format!(",\"value\":{}", self.value.unwrap_or(0)));
            }
            MetricKind::Gauge => {
                let v = self.gauge.unwrap_or(0.0);
                if v.is_finite() {
                    s.push_str(&format!(",\"value\":{v}"));
                } else {
                    s.push_str(",\"value\":null");
                }
            }
            MetricKind::Histogram => {
                let (count, sum, min, max, p50, p95, p99) =
                    self.hist.unwrap_or((0, 0, 0, 0, 0, 0, 0));
                s.push_str(&format!(
                    ",\"count\":{count},\"sum\":{sum},\"min\":{min},\"max\":{max},\
                     \"p50\":{p50},\"p95\":{p95},\"p99\":{p99}"
                ));
            }
        }
        s.push('}');
        s
    }
}

/// A named collection of instruments.
///
/// The global instance behind [`crate::counter`] and friends is what
/// the CLI exports; standalone instances are useful in tests.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// Creates an empty registry.
    pub const fn new() -> Self {
        Registry {
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
        }
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self
            .counters
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(c) = map.get(name) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::new());
        map.insert(name.to_string(), Arc::clone(&c));
        c
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self
            .gauges
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(g) = map.get(name) {
            return Arc::clone(g);
        }
        let g = Arc::new(Gauge::new());
        map.insert(name.to_string(), Arc::clone(&g));
        g
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self
            .histograms
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(h) = map.get(name) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::new());
        map.insert(name.to_string(), Arc::clone(&h));
        h
    }

    /// A snapshot of every instrument, sorted by kind then name.
    pub fn snapshot(&self) -> Vec<MetricRecord> {
        let mut out = Vec::new();
        for (name, c) in self
            .counters
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
        {
            out.push(MetricRecord {
                name: name.clone(),
                kind: MetricKind::Counter,
                value: Some(c.get()),
                gauge: None,
                hist: None,
                buckets: None,
                exemplar: None,
            });
        }
        for (name, g) in self
            .gauges
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
        {
            out.push(MetricRecord {
                name: name.clone(),
                kind: MetricKind::Gauge,
                value: None,
                gauge: Some(g.get()),
                hist: None,
                buckets: None,
                exemplar: None,
            });
        }
        for (name, h) in self
            .histograms
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
        {
            out.push(MetricRecord {
                name: name.clone(),
                kind: MetricKind::Histogram,
                value: None,
                gauge: None,
                hist: Some((
                    h.count(),
                    h.sum(),
                    h.min().unwrap_or(0),
                    h.max().unwrap_or(0),
                    h.quantile(0.5).unwrap_or(0),
                    h.quantile(0.95).unwrap_or(0),
                    h.quantile(0.99).unwrap_or(0),
                )),
                buckets: Some(h.cumulative_buckets()),
                exemplar: h.peek_exemplar(),
            });
        }
        out
    }

    /// Removes every instrument. Existing handles keep working but are
    /// no longer reachable from the registry (used by tests and by the
    /// CLI between commands).
    pub fn reset(&self) {
        self.counters
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clear();
        self.gauges
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clear();
        self.histograms
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let r = Registry::new();
        let c = r.counter("x");
        c.inc();
        c.add(4);
        assert_eq!(r.counter("x").get(), 5);
        let g = r.gauge("y");
        g.set(2.25);
        assert_eq!(r.gauge("y").get(), 2.25);
        // Distinct names are distinct instruments.
        assert_eq!(r.counter("z").get(), 0);
    }

    #[test]
    fn bucket_boundaries_are_exact_then_quarter_octave() {
        // Exact buckets below 16.
        for v in 0..16u64 {
            assert_eq!(Histogram::bucket_index(v), v as usize);
            assert_eq!(Histogram::bucket_bounds(v as usize), (v, v + 1));
        }
        // 16 starts the log range: [16, 20).
        assert_eq!(Histogram::bucket_index(16), 16);
        assert_eq!(Histogram::bucket_bounds(16), (16, 20));
        assert_eq!(Histogram::bucket_index(19), 16);
        assert_eq!(Histogram::bucket_index(20), 17);
        // [32, 40) is the first sub-bucket of the next octave.
        assert_eq!(Histogram::bucket_index(32), 20);
        assert_eq!(Histogram::bucket_bounds(20), (32, 40));
        // Every value maps into its bucket's bounds.
        for v in [0u64, 1, 15, 16, 100, 1000, 123456, u64::MAX / 2, u64::MAX] {
            let idx = Histogram::bucket_index(v);
            let (lo, hi) = Histogram::bucket_bounds(idx);
            assert!(
                lo <= v && (v < hi || hi == u64::MAX),
                "v={v} idx={idx} [{lo},{hi})"
            );
        }
        // Bucket index is monotone in the value.
        let mut last = 0;
        for v in 0..100_000u64 {
            let idx = Histogram::bucket_index(v);
            assert!(idx >= last);
            last = idx;
        }
    }

    #[test]
    fn quantiles_of_uniform_range() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(1000));
        let p50 = h.quantile(0.5).unwrap();
        let p95 = h.quantile(0.95).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        // Quarter-octave buckets bound the relative error at ~12.5%
        // (plus midpoint placement), so allow 15%.
        assert!((p50 as f64 - 500.0).abs() / 500.0 < 0.15, "p50={p50}");
        assert!((p95 as f64 - 950.0).abs() / 950.0 < 0.15, "p95={p95}");
        assert!((p99 as f64 - 990.0).abs() / 990.0 < 0.15, "p99={p99}");
        assert!(p50 <= p95 && p95 <= p99);
    }

    #[test]
    fn quantiles_of_small_exact_values() {
        let h = Histogram::new();
        for _ in 0..90 {
            h.record(2);
        }
        for _ in 0..10 {
            h.record(9);
        }
        // Small values live in exact buckets: quantiles are exact.
        assert_eq!(h.quantile(0.5), Some(2));
        assert_eq!(h.quantile(0.9), Some(2));
        assert_eq!(h.quantile(0.95), Some(9));
        assert_eq!(h.quantile(1.0), Some(9));
        assert_eq!(h.quantile(0.0), Some(2));
    }

    #[test]
    fn empty_histogram_has_no_stats() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn out_of_range_quantile_panics() {
        Histogram::new().quantile(1.5);
    }

    #[test]
    fn single_sample_histogram_is_exact_at_every_quantile() {
        for v in [0u64, 1, 15, 16, 1000] {
            let h = Histogram::new();
            h.record(v);
            // One sample: min/max clamping pins every quantile to it.
            for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
                assert_eq!(h.quantile(q), Some(v), "v={v} q={q}");
            }
            assert_eq!(h.mean(), Some(v as f64));
            assert_eq!(
                h.cumulative_buckets(),
                vec![(
                    {
                        let (lo, hi) = Histogram::bucket_bounds(Histogram::bucket_index(v));
                        assert!(lo <= v);
                        hi - 1
                    },
                    1
                )]
            );
        }
    }

    #[test]
    fn quantiles_at_exact_bucket_boundaries() {
        // Values 15 and 16 straddle the exact/log boundary; 20 and 32
        // open later buckets. Each lands on a bucket's lower bound.
        let h = Histogram::new();
        for v in [15u64, 16, 20, 32] {
            h.record(v);
        }
        // q=0.25 targets rank 1 of 4 → the first bucket; min-clamped.
        assert_eq!(h.quantile(0.25), Some(15));
        // q=0.5 → rank 2 → bucket [16,20), midpoint 17.
        assert_eq!(h.quantile(0.5), Some(17));
        // q=0.75 → rank 3 → bucket [20,24), midpoint 21.
        assert_eq!(h.quantile(0.75), Some(21));
        // q=1.0 → rank 4 → bucket [32,40), midpoint clamped to max 32.
        assert_eq!(h.quantile(1.0), Some(32));
        // q=0.0 always reports the smallest bucket's clamped value.
        assert_eq!(h.quantile(0.0), Some(15));
        // Cumulative buckets are monotone and end at the total count.
        let cum = h.cumulative_buckets();
        assert_eq!(cum.len(), 4);
        assert!(cum.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 < w[1].1));
        assert_eq!(cum.last().unwrap().1, 4);
        assert_eq!(cum[0], (15, 1));
        assert_eq!(cum[1], (19, 2));
    }

    #[test]
    fn empty_histogram_has_no_cumulative_buckets() {
        assert!(Histogram::new().cumulative_buckets().is_empty());
    }

    #[test]
    fn gauge_add_is_atomic_and_signed() {
        let g = Gauge::new();
        g.add(2.5);
        g.add(-1.0);
        assert_eq!(g.get(), 1.5);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let g = &g;
                s.spawn(move || {
                    for _ in 0..1000 {
                        g.add(1.0);
                        g.add(-1.0);
                    }
                    g.add(1.0);
                });
            }
        });
        assert_eq!(g.get(), 9.5);
    }

    #[test]
    fn snapshot_is_consistent_under_concurrent_recording() {
        // Writers hammer the registry while a reader snapshots; every
        // snapshot must be internally consistent (cumulative buckets
        // monotone, count >= last cumulative at read time, sum sane)
        // and never block or panic.
        let r = Registry::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let r = &r;
                s.spawn(move || {
                    let c = r.counter("live.hits");
                    let h = r.histogram("live.lat_us");
                    for i in 0..20_000u64 {
                        c.inc();
                        h.record(t * 7 + i % 1000);
                    }
                });
            }
            let r = &r;
            s.spawn(move || {
                for _ in 0..50 {
                    for m in r.snapshot() {
                        if let Some(b) = &m.buckets {
                            // `le` strictly ascending, cumulative
                            // counts monotone — even mid-write.
                            assert!(b.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 <= w[1].1));
                            let (count, sum, min, max, ..) = m.hist.unwrap();
                            if count > 0 {
                                assert!(min <= max);
                                assert!(sum >= min);
                            }
                        }
                    }
                    std::thread::yield_now();
                }
            });
        });
        assert_eq!(r.counter("live.hits").get(), 80_000);
        let final_cum = r.histogram("live.lat_us").cumulative_buckets();
        assert_eq!(final_cum.last().unwrap().1, 80_000);
    }

    #[test]
    fn counter_is_atomic_under_threads() {
        let r = Registry::new();
        let c = r.counter("hits");
        let h = r.histogram("lat");
        std::thread::scope(|s| {
            for t in 0..8 {
                let c = Arc::clone(&c);
                let h = Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        c.inc();
                        h.record(t * 10_000 + i);
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
        assert_eq!(h.count(), 80_000);
        let total: u64 = (0..80_000u64).sum();
        assert_eq!(h.sum(), total);
    }

    #[test]
    fn snapshot_and_reset() {
        let r = Registry::new();
        r.counter("a").add(3);
        r.gauge("b").set(1.5);
        r.histogram("c").record(7);
        let snap = r.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap[0].name, "a");
        assert_eq!(snap[0].value, Some(3));
        assert_eq!(snap[1].gauge, Some(1.5));
        let hist = snap[2].hist.unwrap();
        assert_eq!(hist.0, 1); // count
        assert_eq!(hist.1, 7); // sum
        r.reset();
        assert!(r.snapshot().is_empty());
    }

    #[test]
    fn exemplar_keeps_worst_tagged_sample_per_window() {
        let h = Histogram::new();
        assert_eq!(h.peek_exemplar(), None);
        h.record_tagged(100, "t-a");
        h.record_tagged(50, "t-b"); // not worse: ignored
        h.record_tagged(200, "t-c");
        assert_eq!(h.peek_exemplar(), Some((200, "t-c".to_string())));
        // Snapshots carry the exemplar without clearing the window.
        let r = Registry::new();
        r.histogram("lat").record_tagged(7, "t-z");
        let snap = r.snapshot();
        assert_eq!(snap[0].exemplar, Some((7, "t-z".to_string())));
        assert_eq!(
            r.histogram("lat").peek_exemplar(),
            Some((7, "t-z".to_string()))
        );
        // take starts a fresh window.
        assert_eq!(h.take_exemplar(), Some((200, "t-c".to_string())));
        assert_eq!(h.peek_exemplar(), None);
        h.record_tagged(1, "t-d");
        assert_eq!(h.peek_exemplar(), Some((1, "t-d".to_string())));
        // Untagged recording never creates an exemplar.
        let plain = Histogram::new();
        plain.record(9);
        assert_eq!(plain.peek_exemplar(), None);
    }

    #[test]
    fn metric_records_serialize_as_json_lines() {
        let r = Registry::new();
        r.counter("sim.runs").add(12);
        r.gauge("rbf.selected_aicc").set(-42.5);
        r.histogram("span.stage.tree.us").record(100);
        let lines: Vec<String> = r.snapshot().iter().map(|m| m.to_json_line()).collect();
        assert_eq!(
            lines[0],
            "{\"t\":\"metric\",\"kind\":\"counter\",\"name\":\"sim.runs\",\"value\":12}"
        );
        assert!(lines[1].contains("\"value\":-42.5"));
        assert!(lines[2].contains("\"count\":1"));
        assert!(lines[2].contains("\"p50\":"));
    }
}
