//! A bounded in-memory ring of recent events, for live inspection.
//!
//! [`EventRing`] is a [`Sink`] that keeps the last `capacity` events
//! (spans and metric snapshots are ignored) behind a mutex. The live
//! plane's `/eventz` route renders its contents on demand; tests use it
//! to assert on leveled emissions without touching stderr. Clones share
//! the same buffer, so one clone can be installed as a sink while
//! another is polled.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use crate::json::{write_json_string, Value};
use crate::sink::{Level, Record, Sink, Verbosity};
use crate::span::monotonic_us;

/// One captured event, stamped with a sequence number and the
/// process-wide monotonic clock.
#[derive(Debug, Clone)]
pub struct RingEvent {
    /// Position in the ring's lifetime stream (0 = first ever seen).
    pub seq: u64,
    /// Capture time on [`monotonic_us`].
    pub at_us: u64,
    /// Severity.
    pub level: Level,
    /// Event name (dotted).
    pub name: String,
    /// Ordered field list.
    pub fields: Vec<(String, Value)>,
}

impl RingEvent {
    /// Serializes the event as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(96);
        s.push_str(&format!(
            "{{\"seq\":{},\"at_us\":{},\"level\":\"{}\",\"name\":",
            self.seq, self.at_us, self.level
        ));
        write_json_string(&mut s, &self.name);
        s.push_str(",\"fields\":{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            write_json_string(&mut s, k);
            s.push(':');
            v.write_json(&mut s);
        }
        s.push_str("}}");
        s
    }
}

#[derive(Debug, Default)]
struct RingState {
    events: VecDeque<RingEvent>,
    next_seq: u64,
    dropped: u64,
}

/// A capacity-bounded sink retaining the most recent events.
#[derive(Debug, Clone)]
pub struct EventRing {
    state: Arc<Mutex<RingState>>,
    capacity: usize,
}

impl EventRing {
    /// Creates a ring holding at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        EventRing {
            state: Arc::new(Mutex::new(RingState::default())),
            capacity: capacity.max(1),
        }
    }

    /// The ring's capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// A snapshot of the retained events, oldest first.
    pub fn events(&self) -> Vec<RingEvent> {
        let state = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        state.events.iter().cloned().collect()
    }

    /// How many events have been evicted to honour the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .dropped
    }

    /// Renders the ring as the `ppm-eventz v1` JSON document served by
    /// the live plane's `/eventz` route.
    pub fn render_json(&self) -> String {
        let state = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut s = String::with_capacity(256);
        s.push_str(&format!(
            "{{\"schema\":\"ppm-eventz v1\",\"capacity\":{},\"dropped\":{},\"events\":[",
            self.capacity, state.dropped
        ));
        for (i, e) in state.events.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&e.to_json());
        }
        s.push_str("]}");
        s
    }
}

impl Sink for EventRing {
    fn record(&mut self, rec: &Record) {
        let Record::Event {
            name,
            level,
            fields,
            ..
        } = rec
        else {
            return;
        };
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let seq = state.next_seq;
        state.next_seq += 1;
        if state.events.len() == self.capacity {
            state.events.pop_front();
            state.dropped += 1;
        }
        state.events.push_back(RingEvent {
            seq,
            at_us: monotonic_us(),
            level: *level,
            name: name.clone(),
            fields: fields.clone(),
        });
    }

    fn verbosity(&self) -> Verbosity {
        Verbosity::Trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn evt(name: &str, level: Level) -> Record {
        Record::Event {
            name: name.to_string(),
            level,
            fields: vec![("k".to_string(), Value::from(1u64))],
            depth: 0,
        }
    }

    #[test]
    fn ring_retains_the_most_recent_events() {
        let mut ring = EventRing::new(2);
        ring.record(&evt("a", Level::Info));
        ring.record(&evt("b", Level::Warn));
        ring.record(&evt("c", Level::Error));
        let events = ring.events();
        let names: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["b", "c"]);
        assert_eq!(ring.dropped(), 1);
        // Sequence numbers are lifetime positions, not ring slots.
        assert_eq!(events[0].seq, 1);
        assert_eq!(events[1].seq, 2);
        assert!(events[1].at_us >= events[0].at_us);
    }

    #[test]
    fn ring_ignores_spans_and_metrics() {
        let mut ring = EventRing::new(4);
        ring.record(&Record::Span {
            name: "s".into(),
            us: 1,
            start_us: 0,
            tid: 0,
            cpu_us: None,
            depth: 0,
            parent: None,
        });
        assert!(ring.events().is_empty());
    }

    #[test]
    fn render_json_is_the_eventz_document() {
        let mut ring = EventRing::new(8);
        ring.record(&evt("live.hello", Level::Warn));
        let doc = ring.render_json();
        assert!(doc.starts_with("{\"schema\":\"ppm-eventz v1\""));
        assert!(doc.contains("\"level\":\"warn\""));
        assert!(doc.contains("\"name\":\"live.hello\""));
        assert!(doc.contains("\"fields\":{\"k\":1}"));
        assert!(doc.ends_with("]}"));
    }

    #[test]
    fn clones_share_one_buffer() {
        let ring = EventRing::new(4);
        let mut writer = ring.clone();
        writer.record(&evt("shared", Level::Info));
        assert_eq!(ring.events().len(), 1);
    }
}
