//! Output sinks for telemetry records.
//!
//! A [`Sink`] receives discrete [`Record`]s — events, span closings, and
//! metric snapshots — and renders them somewhere: human-readable
//! progress on stderr ([`StderrSink`]), machine-readable JSON lines
//! ([`JsonlSink`]), or an in-memory buffer for tests ([`BufferSink`]).
//! Sinks are installed globally via [`crate::add_sink`] and invoked in
//! installation order.

use std::io::Write as IoWrite;
use std::sync::{Arc, Mutex};

use crate::json::{write_json_string, Value};
use crate::registry::MetricRecord;

/// How much a sink should say.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verbosity {
    /// Nothing at all (successful runs are silent).
    Quiet,
    /// Coarse progress: stage-level spans and events.
    Progress,
    /// Everything, including nested spans.
    Trace,
}

/// Severity of an [`Record::Event`]. Ordered so sinks can filter with a
/// simple comparison: `level >= Level::Warn` admits warnings and errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Diagnostic detail, hidden unless tracing.
    Debug,
    /// Normal progress reporting (the historical default).
    Info,
    /// Something recoverable went wrong (retry, client disconnect).
    Warn,
    /// Something was lost (quarantined point, dropped artifact).
    Error,
}

impl Level {
    /// The lowercase wire name (`"debug"`, `"info"`, `"warn"`, `"error"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One telemetry record, as handed to sinks.
#[derive(Debug, Clone)]
pub enum Record {
    /// A discrete named occurrence with scalar fields.
    Event {
        /// Event name (dotted, e.g. `rbf.selected`).
        name: String,
        /// Severity; `Warn`+ stays visible at `Progress` regardless of
        /// nesting depth.
        level: Level,
        /// Ordered field list.
        fields: Vec<(String, Value)>,
        /// Nesting depth of the span stack at emission time.
        depth: usize,
    },
    /// A span finished.
    Span {
        /// Span name (dotted, e.g. `stage.sampling`).
        name: String,
        /// Wall-clock duration in microseconds.
        us: u64,
        /// Start offset on the process-wide monotonic clock
        /// ([`crate::monotonic_us`]), in microseconds.
        start_us: u64,
        /// Recording thread's stable ordinal ([`crate::thread_ordinal`]).
        tid: u64,
        /// Process CPU time consumed while the span was open, if the
        /// platform provides readings (10 ms granularity on Linux).
        cpu_us: Option<u64>,
        /// Nesting depth (0 = top level).
        depth: usize,
        /// Name of the enclosing span, if any.
        parent: Option<String>,
    },
    /// A metric snapshot line (emitted at export time).
    Metric(MetricRecord),
}

impl Record {
    /// Serializes the record as one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        match self {
            Record::Event {
                name,
                level,
                fields,
                depth,
            } => {
                let mut s = String::with_capacity(64);
                s.push_str("{\"t\":\"event\",\"name\":");
                write_json_string(&mut s, name);
                s.push_str(&format!(",\"level\":\"{level}\",\"depth\":{depth}"));
                s.push_str(",\"fields\":{");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    write_json_string(&mut s, k);
                    s.push(':');
                    v.write_json(&mut s);
                }
                s.push_str("}}");
                s
            }
            Record::Span {
                name,
                us,
                start_us,
                tid,
                cpu_us,
                depth,
                parent,
            } => {
                let mut s = String::with_capacity(96);
                s.push_str("{\"t\":\"span\",\"name\":");
                write_json_string(&mut s, name);
                s.push_str(&format!(
                    ",\"us\":{us},\"start_us\":{start_us},\"tid\":{tid}"
                ));
                match cpu_us {
                    Some(c) => s.push_str(&format!(",\"cpu_us\":{c}")),
                    None => s.push_str(",\"cpu_us\":null"),
                }
                s.push_str(&format!(",\"depth\":{depth},\"parent\":"));
                match parent {
                    Some(p) => write_json_string(&mut s, p),
                    None => s.push_str("null"),
                }
                s.push('}');
                s
            }
            Record::Metric(m) => m.to_json_line(),
        }
    }

    /// Renders the record as a human-readable progress line, or `None`
    /// if this record kind has no human rendering (metric snapshots).
    pub fn to_human_line(&self) -> Option<String> {
        match self {
            Record::Event {
                name,
                level,
                fields,
                depth,
            } => {
                let tag = match level {
                    Level::Warn | Level::Error => format!("{level}: "),
                    Level::Debug | Level::Info => String::new(),
                };
                let mut s = format!("{:indent$}{tag}{name}", "", indent = depth * 2);
                for (k, v) in fields {
                    let mut vs = String::new();
                    v.write_json(&mut vs);
                    s.push_str(&format!(" {k}={vs}"));
                }
                Some(s)
            }
            Record::Span {
                name, us, depth, ..
            } => {
                let ms = *us as f64 / 1000.0;
                Some(format!(
                    "{:indent$}{name} done in {ms:.1} ms",
                    "",
                    indent = depth * 2
                ))
            }
            Record::Metric(_) => None,
        }
    }

    /// Whether a sink at `v` should see this record. Warnings and
    /// errors surface at `Progress` even when emitted inside nested
    /// spans; `Quiet` suppresses everything.
    pub fn visible_at(&self, v: Verbosity) -> bool {
        match self {
            Record::Metric(_) => v > Verbosity::Quiet,
            Record::Event { depth, level, .. } => match v {
                Verbosity::Quiet => false,
                Verbosity::Progress => *depth == 0 || *level >= Level::Warn,
                Verbosity::Trace => true,
            },
            Record::Span { depth, .. } => match v {
                Verbosity::Quiet => false,
                Verbosity::Progress => *depth == 0,
                Verbosity::Trace => true,
            },
        }
    }
}

/// A destination for telemetry records.
pub trait Sink: Send {
    /// Handles one record. Filtering by verbosity happens *before*
    /// this is called.
    fn record(&mut self, rec: &Record);
    /// The verbosity this sink wants.
    fn verbosity(&self) -> Verbosity;
    /// Flushes any buffered output.
    fn flush(&mut self) {}
}

/// Human-readable progress lines on stderr.
#[derive(Debug)]
pub struct StderrSink {
    verbosity: Verbosity,
}

impl StderrSink {
    /// Creates a stderr reporter at the given verbosity.
    pub fn new(verbosity: Verbosity) -> Self {
        StderrSink { verbosity }
    }
}

impl Sink for StderrSink {
    fn record(&mut self, rec: &Record) {
        // Dispatch already filters by verbosity, but re-check here so a
        // Quiet reporter stays silent even if it is ever invoked
        // directly (defense in depth for `--quiet`).
        if !rec.visible_at(self.verbosity) {
            return;
        }
        if let Some(line) = rec.to_human_line() {
            eprintln!("[ppm] {line}");
        }
    }

    fn verbosity(&self) -> Verbosity {
        self.verbosity
    }
}

/// JSON-lines exporter writing to any `Write` (typically a file).
pub struct JsonlSink<W: IoWrite + Send> {
    writer: W,
}

impl<W: IoWrite + Send> JsonlSink<W> {
    /// Creates a JSONL exporter over `writer`. Callers should wrap
    /// files in a `BufWriter`.
    pub fn new(writer: W) -> Self {
        JsonlSink { writer }
    }
}

impl<W: IoWrite + Send> Sink for JsonlSink<W> {
    fn record(&mut self, rec: &Record) {
        let _ = writeln!(self.writer, "{}", rec.to_json_line());
    }

    fn verbosity(&self) -> Verbosity {
        // The JSONL file always gets the full trace; it exists to be
        // filtered after the fact.
        Verbosity::Trace
    }

    fn flush(&mut self) {
        let _ = self.writer.flush();
    }
}

/// Captures records in memory; used by tests to assert on emissions.
#[derive(Debug, Clone, Default)]
pub struct BufferSink {
    records: Arc<Mutex<Vec<Record>>>,
}

impl BufferSink {
    /// Creates an empty buffer sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// A clone of every record captured so far.
    pub fn records(&self) -> Vec<Record> {
        self.records
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }
}

impl Sink for BufferSink {
    fn record(&mut self, rec: &Record) {
        self.records
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(rec.clone());
    }

    fn verbosity(&self) -> Verbosity {
        Verbosity::Trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{MetricKind, MetricRecord};

    #[test]
    fn event_records_serialize_with_escaped_fields() {
        let rec = Record::Event {
            name: "bench.loaded".to_string(),
            level: Level::Info,
            fields: vec![
                ("name".to_string(), Value::from("gcc \"O2\"\n")),
                ("points".to_string(), Value::from(64u64)),
                ("aicc".to_string(), Value::from(-12.5)),
            ],
            depth: 1,
        };
        assert_eq!(
            rec.to_json_line(),
            "{\"t\":\"event\",\"name\":\"bench.loaded\",\"level\":\"info\",\"depth\":1,\
             \"fields\":{\"name\":\"gcc \\\"O2\\\"\\n\",\"points\":64,\"aicc\":-12.5}}"
        );
    }

    #[test]
    fn span_records_serialize_with_parent() {
        let rec = Record::Span {
            name: "stage.tree".to_string(),
            us: 1500,
            start_us: 250,
            tid: 3,
            cpu_us: Some(1000),
            depth: 1,
            parent: Some("build".to_string()),
        };
        assert_eq!(
            rec.to_json_line(),
            "{\"t\":\"span\",\"name\":\"stage.tree\",\"us\":1500,\"start_us\":250,\
             \"tid\":3,\"cpu_us\":1000,\"depth\":1,\"parent\":\"build\"}"
        );
        let top = Record::Span {
            name: "build".to_string(),
            us: 9000,
            start_us: 0,
            tid: 0,
            cpu_us: None,
            depth: 0,
            parent: None,
        };
        assert!(top.to_json_line().contains("\"cpu_us\":null"));
        assert!(top.to_json_line().ends_with("\"parent\":null}"));
    }

    #[test]
    fn verbosity_filters_by_depth() {
        let top = Record::Span {
            name: "a".into(),
            us: 1,
            start_us: 0,
            tid: 0,
            cpu_us: None,
            depth: 0,
            parent: None,
        };
        let nested = Record::Span {
            name: "b".into(),
            us: 1,
            start_us: 0,
            tid: 0,
            cpu_us: None,
            depth: 2,
            parent: Some("a".into()),
        };
        assert!(!top.visible_at(Verbosity::Quiet));
        assert!(top.visible_at(Verbosity::Progress));
        assert!(!nested.visible_at(Verbosity::Progress));
        assert!(nested.visible_at(Verbosity::Trace));
    }

    #[test]
    fn quiet_stderr_sink_stays_silent_even_when_invoked_directly() {
        // StderrSink re-checks verbosity inside record(): a Quiet
        // reporter must not print even if dispatch filtering were
        // bypassed. We can't capture stderr here, but we can assert the
        // contract the filter relies on.
        let sink = StderrSink::new(Verbosity::Quiet);
        let rec = Record::Event {
            name: "noisy".into(),
            level: Level::Info,
            fields: vec![],
            depth: 0,
        };
        assert!(!rec.visible_at(sink.verbosity()));
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_record() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.record(&Record::Event {
            name: "x".into(),
            level: Level::Info,
            fields: vec![],
            depth: 0,
        });
        sink.record(&Record::Metric(MetricRecord {
            name: "c".into(),
            kind: MetricKind::Counter,
            value: Some(2),
            gauge: None,
            hist: None,
            buckets: None,
            exemplar: None,
        }));
        let text = String::from_utf8(sink.writer).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"t\":\"event\""));
        assert!(lines[1].starts_with("{\"t\":\"metric\""));
    }

    #[test]
    fn human_lines_indent_by_depth() {
        let rec = Record::Span {
            name: "stage.rbf_train".into(),
            us: 2500,
            start_us: 0,
            tid: 0,
            cpu_us: None,
            depth: 1,
            parent: Some("build".into()),
        };
        assert_eq!(
            rec.to_human_line().unwrap(),
            "  stage.rbf_train done in 2.5 ms"
        );
    }
}
