//! RAII wall-clock span timers with parent/child nesting.
//!
//! A [`Span`] measures the time between its creation and drop. Spans
//! created while another span is alive on the same thread become its
//! children: the closing record carries the nesting depth and parent
//! name, and the human reporter indents accordingly.
//!
//! Every closing record also carries the span's start offset on the
//! process-wide monotonic clock ([`monotonic_us`]), the recording
//! thread's stable ordinal ([`thread_ordinal`]), and — where the
//! platform provides it — the process CPU time consumed while the span
//! was open. Together these are enough to reconstruct the full span
//! tree as a timeline (the Chrome-trace/Perfetto export in `ppm-obs`
//! builds directly on them).
//!
//! Worker threads spawned mid-pipeline start with an empty span stack,
//! which would orphan their spans at depth 0. [`TelemetryContext`]
//! fixes that: capture the spawning thread's context with
//! [`crate::current_context`], then [`TelemetryContext::attach`] it in
//! the worker so nested spans and events inherit the correct depth,
//! parent, and scoped registry.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use crate::cputime::process_cpu_us;
use crate::registry::Registry;
use crate::sink::Record;

thread_local! {
    /// Names of the spans currently open on this thread, outermost first.
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
    /// This thread's cached ordinal (assigned on first telemetry use).
    static THREAD_ORDINAL: u64 = NEXT_ORDINAL.fetch_add(1, Ordering::Relaxed);
}

/// Source of thread ordinals; the first thread to record gets 0.
static NEXT_ORDINAL: AtomicU64 = AtomicU64::new(0);

/// Process-wide stack of open `stage.*` spans, innermost last. Unlike
/// `SPAN_STACK` this is global, so the live plane can answer "what
/// stage is the build in right now?" from any thread.
static STAGE_STACK: std::sync::Mutex<Vec<String>> = std::sync::Mutex::new(Vec::new());

/// The innermost open `stage.*` span anywhere in the process, without
/// the `stage.` prefix (e.g. `"simulation"`), or `None` between stages.
pub fn current_stage() -> Option<String> {
    STAGE_STACK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .last()
        .map(|s| s.trim_start_matches("stage.").to_string())
}

fn stage_push(name: &str) {
    if name.starts_with("stage.") {
        STAGE_STACK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(name.to_string());
    }
}

fn stage_pop(name: &str) {
    if name.starts_with("stage.") {
        let mut stack = STAGE_STACK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(pos) = stack.iter().rposition(|n| n == name) {
            stack.remove(pos);
        }
    }
}

/// The process-wide monotonic epoch, fixed on first telemetry use.
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Microseconds elapsed on the process-wide monotonic clock. All span
/// `start_us` values share this origin, so records from different
/// threads are mutually comparable.
pub fn monotonic_us() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

/// A small, stable identifier for the current thread, assigned on first
/// telemetry use. Used as the `tid` lane in trace exports (the standard
/// library's `ThreadId` has no stable public integer form).
pub fn thread_ordinal() -> u64 {
    THREAD_ORDINAL.with(|t| *t)
}

/// The current nesting depth on this thread (number of open spans,
/// including any inherited via [`TelemetryContext::attach`]).
pub fn current_depth() -> usize {
    SPAN_STACK.with(|s| s.borrow().len())
}

/// The name of the innermost open span on this thread, if any.
pub fn current_span() -> Option<String> {
    SPAN_STACK.with(|s| s.borrow().last().cloned())
}

/// A snapshot of one thread's telemetry surroundings: its open span
/// stack and its scoped-registry override. Capture it with
/// [`crate::current_context`] before spawning workers, then
/// [`TelemetryContext::attach`] it inside each worker so their spans,
/// events, and metrics nest under the spawning stage instead of
/// floating at depth 0 against the global registry.
#[derive(Debug, Clone, Default)]
pub struct TelemetryContext {
    pub(crate) spans: Vec<String>,
    pub(crate) registry: Option<Arc<Registry>>,
}

impl TelemetryContext {
    /// Installs this context on the current thread, returning a guard
    /// that restores the previous state when dropped. The inherited
    /// span names act as a read-only base: they contribute depth and
    /// parent attribution but are closed only by their owning thread.
    pub fn attach(&self) -> ContextGuard {
        let restore_len = SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let len = stack.len();
            stack.extend(self.spans.iter().cloned());
            len
        });
        let prev_registry = crate::set_registry_override(self.registry.clone());
        ContextGuard {
            restore_len,
            prev_registry,
        }
    }
}

/// Restores the thread's span stack and registry override on drop.
/// Returned by [`TelemetryContext::attach`].
#[derive(Debug)]
pub struct ContextGuard {
    restore_len: usize,
    prev_registry: Option<Arc<Registry>>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        SPAN_STACK.with(|s| s.borrow_mut().truncate(self.restore_len));
        crate::set_registry_override(self.prev_registry.take());
    }
}

/// Captures the current thread's context for propagation to workers.
pub(crate) fn snapshot_context() -> TelemetryContext {
    TelemetryContext {
        spans: SPAN_STACK.with(|s| s.borrow().clone()),
        registry: crate::registry_override(),
    }
}

/// A running wall-clock timer, closed on drop.
///
/// When telemetry is disabled ([`crate::set_enabled`]) the constructor
/// returns an inert span that records nothing, so instrumentation can
/// stay in place unconditionally.
#[derive(Debug)]
pub struct Span {
    name: Option<String>,
    start: Instant,
    start_us: u64,
    cpu_start: Option<u64>,
}

impl Span {
    /// Opens a span named `name` and pushes it onto this thread's
    /// span stack.
    pub fn enter(name: &str) -> Self {
        if !crate::enabled() {
            return Span {
                name: None,
                start: Instant::now(),
                start_us: 0,
                cpu_start: None,
            };
        }
        SPAN_STACK.with(|s| s.borrow_mut().push(name.to_string()));
        stage_push(name);
        Span {
            name: Some(name.to_string()),
            start: Instant::now(),
            start_us: monotonic_us(),
            cpu_start: process_cpu_us(),
        }
    }

    /// Elapsed time so far in microseconds.
    pub fn elapsed_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(name) = self.name.take() else {
            return;
        };
        let us = self.elapsed_us();
        let cpu_us = match (self.cpu_start, process_cpu_us()) {
            (Some(a), Some(b)) => Some(b.saturating_sub(a)),
            _ => None,
        };
        let (depth, parent) = SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Pop our own entry; tolerate out-of-order drops by
            // removing the deepest matching name.
            if let Some(pos) = stack.iter().rposition(|n| n == &name) {
                stack.remove(pos);
            }
            (stack.len(), stack.last().cloned())
        });
        stage_pop(&name);
        crate::with_active_registry(|r| r.histogram(&format!("span.{name}.us")).record(us));
        crate::dispatch(&Record::Span {
            name,
            us,
            start_us: self.start_us,
            tid: thread_ordinal(),
            cpu_us,
            depth,
            parent,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_tracks_nesting() {
        assert_eq!(current_depth(), 0);
        let _a = Span::enter("outer");
        assert_eq!(current_depth(), 1);
        assert_eq!(current_span().as_deref(), Some("outer"));
        {
            let _b = Span::enter("inner");
            assert_eq!(current_depth(), 2);
            assert_eq!(current_span().as_deref(), Some("inner"));
        }
        assert_eq!(current_depth(), 1);
        assert_eq!(current_span().as_deref(), Some("outer"));
    }

    #[test]
    fn current_stage_tracks_stage_spans_globally() {
        {
            let _s = Span::enter("stage.testing_live");
            assert_eq!(current_stage().as_deref(), Some("testing_live"));
            // Visible from another thread: the stack is process-wide.
            let seen = std::thread::spawn(current_stage).join().unwrap();
            assert_eq!(seen.as_deref(), Some("testing_live"));
            // Non-stage spans don't disturb it.
            let _inner = Span::enter("t.not_a_stage");
            assert_eq!(current_stage().as_deref(), Some("testing_live"));
        }
        assert_eq!(current_stage(), None);
    }

    #[test]
    fn elapsed_is_monotone() {
        let s = Span::enter("t");
        let a = s.elapsed_us();
        let b = s.elapsed_us();
        assert!(b >= a);
    }

    #[test]
    fn monotonic_clock_never_goes_backwards() {
        let a = monotonic_us();
        let b = monotonic_us();
        assert!(b >= a);
    }

    #[test]
    fn thread_ordinals_are_distinct_and_stable() {
        let mine = thread_ordinal();
        assert_eq!(mine, thread_ordinal(), "ordinal must be cached");
        let theirs = std::thread::spawn(thread_ordinal).join().unwrap();
        assert_ne!(mine, theirs);
    }

    #[test]
    fn attached_context_inherits_depth_and_parent() {
        let _outer = Span::enter("ctx.outer");
        let ctx = crate::current_context();
        let handle = std::thread::spawn(move || {
            let _g = ctx.attach();
            // The worker sees the spawning thread's stack as its base.
            (current_depth(), current_span())
        });
        let (depth, parent) = handle.join().unwrap();
        assert_eq!(depth, 1);
        assert_eq!(parent.as_deref(), Some("ctx.outer"));
        // Our own stack is untouched by the worker's guard.
        assert_eq!(current_depth(), 1);
    }

    #[test]
    fn context_guard_restores_on_drop() {
        let ctx = TelemetryContext {
            spans: vec!["base.a".into(), "base.b".into()],
            registry: None,
        };
        assert_eq!(current_depth(), 0);
        {
            let _g = ctx.attach();
            assert_eq!(current_depth(), 2);
            assert_eq!(current_span().as_deref(), Some("base.b"));
        }
        assert_eq!(current_depth(), 0);
    }
}
