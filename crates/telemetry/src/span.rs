//! RAII wall-clock span timers with parent/child nesting.
//!
//! A [`Span`] measures the time between its creation and drop. Spans
//! created while another span is alive on the same thread become its
//! children: the closing record carries the nesting depth and parent
//! name, and the human reporter indents accordingly.

use std::cell::RefCell;
use std::time::Instant;

use crate::sink::Record;

thread_local! {
    /// Names of the spans currently open on this thread, outermost first.
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// The current nesting depth on this thread (number of open spans).
pub fn current_depth() -> usize {
    SPAN_STACK.with(|s| s.borrow().len())
}

/// The name of the innermost open span on this thread, if any.
pub fn current_span() -> Option<String> {
    SPAN_STACK.with(|s| s.borrow().last().cloned())
}

/// A running wall-clock timer, closed on drop.
///
/// When telemetry is disabled ([`crate::set_enabled`]) the constructor
/// returns an inert span that records nothing, so instrumentation can
/// stay in place unconditionally.
#[derive(Debug)]
pub struct Span {
    name: Option<String>,
    start: Instant,
}

impl Span {
    /// Opens a span named `name` and pushes it onto this thread's
    /// span stack.
    pub fn enter(name: &str) -> Self {
        if !crate::enabled() {
            return Span {
                name: None,
                start: Instant::now(),
            };
        }
        SPAN_STACK.with(|s| s.borrow_mut().push(name.to_string()));
        Span {
            name: Some(name.to_string()),
            start: Instant::now(),
        }
    }

    /// Elapsed time so far in microseconds.
    pub fn elapsed_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(name) = self.name.take() else {
            return;
        };
        let us = self.elapsed_us();
        let (depth, parent) = SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Pop our own entry; tolerate out-of-order drops by
            // removing the deepest matching name.
            if let Some(pos) = stack.iter().rposition(|n| n == &name) {
                stack.remove(pos);
            }
            (stack.len(), stack.last().cloned())
        });
        crate::registry()
            .histogram(&format!("span.{name}.us"))
            .record(us);
        crate::dispatch(&Record::Span {
            name,
            us,
            depth,
            parent,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_tracks_nesting() {
        assert_eq!(current_depth(), 0);
        let _a = Span::enter("outer");
        assert_eq!(current_depth(), 1);
        assert_eq!(current_span().as_deref(), Some("outer"));
        {
            let _b = Span::enter("inner");
            assert_eq!(current_depth(), 2);
            assert_eq!(current_span().as_deref(), Some("inner"));
        }
        assert_eq!(current_depth(), 1);
        assert_eq!(current_span().as_deref(), Some("outer"));
    }

    #[test]
    fn elapsed_is_monotone() {
        let s = Span::enter("t");
        let a = s.elapsed_us();
        let b = s.elapsed_us();
        assert!(b >= a);
    }
}
