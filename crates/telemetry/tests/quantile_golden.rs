//! Golden accuracy tests for the log-bucketed histogram's quantile
//! estimator.
//!
//! The histogram promises quarter-octave buckets above 16, which bounds
//! the relative quantile error: a value `x` shares its bucket with
//! values at most `x/4` away, so the reported bucket midpoint is within
//! 25% of the exact order statistic in the worst case (and ~12.5%
//! typically). These tests pin that contract against exact quantiles
//! computed by sorting, on known deterministic distributions — if a
//! bucketing change degrades the estimator, they fail loudly.

use ppm_telemetry::Histogram;

/// xorshift64* — deterministic local generator so this test needs no
/// RNG dependency.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[0, bound)`.
    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// The exact order statistic matching the histogram's definition:
/// the `ceil(q·n)`-th smallest observation (1-indexed).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as f64;
    let rank = ((q * n).ceil() as usize).max(1);
    sorted[rank - 1]
}

/// Asserts the estimator is within `tol` relative error of the exact
/// quantile at p50/p90/p99 (absolute slack 1 for tiny values).
fn assert_quantiles_close(values: &[u64], tol: f64, label: &str) {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    for q in [0.50, 0.90, 0.99] {
        let exact = exact_quantile(&sorted, q);
        let est = h.quantile(q).expect("non-empty histogram");
        let err = (est as f64 - exact as f64).abs();
        let bound = (exact as f64 * tol).max(1.0);
        assert!(
            err <= bound,
            "{label}: p{} estimate {est} vs exact {exact} (err {err:.1} > {bound:.1})",
            (q * 100.0) as u32
        );
    }
}

#[test]
fn uniform_distribution_quantiles_within_bucket_error() {
    let mut rng = XorShift(0x9E37_79B9_7F4A_7C15);
    let values: Vec<u64> = (0..10_000).map(|_| rng.below(100_000)).collect();
    assert_quantiles_close(&values, 0.25, "uniform[0,100k)");
}

#[test]
fn log_uniform_distribution_quantiles_within_bucket_error() {
    // Spread across five orders of magnitude — the regime log bucketing
    // exists for (span durations from microseconds to seconds).
    let mut rng = XorShift(42);
    let values: Vec<u64> = (0..10_000)
        .map(|_| {
            let exponent = rng.below(17); // 2^0 .. 2^16
            (1u64 << exponent) + rng.below((1u64 << exponent).max(1))
        })
        .collect();
    assert_quantiles_close(&values, 0.25, "log-uniform");
}

#[test]
fn heavy_tail_distribution_quantiles_within_bucket_error() {
    // Mostly-small with a long tail, like per-point simulation times
    // with occasional stragglers.
    let mut rng = XorShift(7);
    let values: Vec<u64> = (0..10_000)
        .map(|_| {
            let base = rng.below(200) + 20;
            if rng.below(100) < 5 {
                base * 50 // 5% stragglers
            } else {
                base
            }
        })
        .collect();
    assert_quantiles_close(&values, 0.25, "heavy-tail");
}

#[test]
fn small_values_are_exact() {
    // Values below 16 get dedicated linear buckets: quantiles must be
    // exact, not approximate.
    let mut rng = XorShift(1234);
    let values: Vec<u64> = (0..5_000).map(|_| rng.below(16)).collect();
    let h = Histogram::new();
    for &v in &values {
        h.record(v);
    }
    let mut sorted = values.clone();
    sorted.sort_unstable();
    for q in [0.01, 0.25, 0.50, 0.75, 0.90, 0.99, 1.0] {
        assert_eq!(
            h.quantile(q).unwrap(),
            exact_quantile(&sorted, q),
            "linear-bucket quantile p{} must be exact",
            (q * 100.0) as u32
        );
    }
}

#[test]
fn constant_distribution_is_exact_via_clamping() {
    // Every observation identical: min/max clamping must pin the
    // estimate to the true value regardless of bucket width.
    let h = Histogram::new();
    for _ in 0..1_000 {
        h.record(123_456);
    }
    for q in [0.0, 0.5, 0.99, 1.0] {
        assert_eq!(h.quantile(q), Some(123_456));
    }
}

#[test]
fn typical_error_is_half_bucket_not_worst_case() {
    // On a dense uniform distribution the p50 estimate should usually
    // land well inside the documented ~12.5% typical error, not at the
    // 25% worst case.
    let mut rng = XorShift(99);
    let values: Vec<u64> = (0..50_000).map(|_| 10_000 + rng.below(90_000)).collect();
    let h = Histogram::new();
    for &v in &values {
        h.record(v);
    }
    let mut sorted = values.clone();
    sorted.sort_unstable();
    let exact = exact_quantile(&sorted, 0.5) as f64;
    let est = h.quantile(0.5).unwrap() as f64;
    assert!(
        (est - exact).abs() / exact <= 0.125,
        "p50 {est} strayed more than 12.5% from exact {exact}"
    );
}
