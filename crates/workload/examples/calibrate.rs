//! Calibration sweep: per-benchmark CPI and component rates at the
//! default configuration, plus parameter sensitivities.
use ppm_sim::*;
use ppm_workload::*;

fn run(b: Benchmark, c: SimConfig, n: usize) -> SimStats {
    Processor::new(c).run(TraceGenerator::new(b, 1).take(n))
}

fn main() {
    let n = 200_000;
    println!(
        "{:<12} {:>6} {:>7} {:>7} {:>7} {:>7}",
        "bench", "cpi", "dl1mr", "l2mr", "il1mr", "mispr"
    );
    for b in Benchmark::all() {
        let s = run(b, SimConfig::default(), n);
        println!(
            "{:<12} {:>6.3} {:>7.4} {:>7.4} {:>7.4} {:>7.4}",
            b.to_string(),
            s.cpi(),
            s.dl1.miss_rate(),
            s.l2.miss_rate(),
            s.il1.miss_rate(),
            s.mispredict_rate()
        );
    }
    println!("\nsensitivities (cpi at low/high of each param):");
    type ConfigAt = Box<dyn Fn(bool) -> SimConfig>;
    let params: Vec<(&str, ConfigAt)> = vec![
        (
            "pipe_depth",
            Box::new(|hi| {
                SimConfig::builder()
                    .pipe_depth(if hi { 7 } else { 24 })
                    .build()
                    .unwrap()
            }),
        ),
        (
            "rob",
            Box::new(|hi| {
                SimConfig::builder()
                    .rob_size(if hi { 128 } else { 24 })
                    .build()
                    .unwrap()
            }),
        ),
        (
            "l2_size",
            Box::new(|hi| {
                SimConfig::builder()
                    .l2_size_kb(if hi { 8192 } else { 256 })
                    .build()
                    .unwrap()
            }),
        ),
        (
            "l2_lat",
            Box::new(|hi| {
                SimConfig::builder()
                    .l2_lat(if hi { 5 } else { 20 })
                    .build()
                    .unwrap()
            }),
        ),
        (
            "il1",
            Box::new(|hi| {
                SimConfig::builder()
                    .il1_size_kb(if hi { 64 } else { 8 })
                    .build()
                    .unwrap()
            }),
        ),
        (
            "dl1",
            Box::new(|hi| {
                SimConfig::builder()
                    .dl1_size_kb(if hi { 64 } else { 8 })
                    .build()
                    .unwrap()
            }),
        ),
        (
            "dl1_lat",
            Box::new(|hi| {
                SimConfig::builder()
                    .dl1_lat(if hi { 1 } else { 4 })
                    .build()
                    .unwrap()
            }),
        ),
    ];
    print!("{:<12}", "bench");
    for (name, _) in &params {
        print!(" {:>14}", name);
    }
    println!();
    for b in Benchmark::all() {
        print!("{:<12}", b.to_string());
        for (_, mk) in &params {
            let lo = run(b, mk(false), n).cpi();
            let hi = run(b, mk(true), n).cpi();
            print!(" {:>6.2}/{:<7.2}", lo, hi);
        }
        println!();
    }
}
