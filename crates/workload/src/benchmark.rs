//! The eight SPEC CPU2000 program surrogates and their profiles.

use std::fmt;
use std::str::FromStr;

use crate::{InputSet, InstrMix, MemRegion, Profile};

const KB: u64 = 1024;
const MB: u64 = 1024 * 1024;

/// The benchmarks of the paper's Table 3: six SPECint and two SPECfp
/// programs, run with MinneSPEC `lgred`-scale inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Benchmark {
    /// 181.mcf — single-depot vehicle scheduling; pointer-chasing over a
    /// multi-megabyte network, extremely memory bound.
    Mcf,
    /// 186.crafty — chess; large code, branchy, hard-to-predict control.
    Crafty,
    /// 197.parser — dictionary link grammar; mixed memory and control.
    Parser,
    /// 253.perlbmk — Perl interpreter; large code footprint, indirect
    /// control.
    Perlbmk,
    /// 255.vortex — object database; the largest code footprint, very
    /// instruction-cache sensitive.
    Vortex,
    /// 300.twolf — place and route; a working set that fits mid-size L2s.
    Twolf,
    /// 183.equake — FP earthquake simulation; streaming array access,
    /// highly predictable loops.
    Equake,
    /// 188.ammp — FP molecular dynamics; regular computation with a
    /// moderate working set.
    Ammp,
}

impl Benchmark {
    /// All eight benchmarks in the paper's Table 3 order.
    pub fn all() -> [Benchmark; 8] {
        [
            Benchmark::Mcf,
            Benchmark::Crafty,
            Benchmark::Parser,
            Benchmark::Perlbmk,
            Benchmark::Vortex,
            Benchmark::Twolf,
            Benchmark::Equake,
            Benchmark::Ammp,
        ]
    }

    /// The SPEC-style name (e.g. `"181.mcf"`).
    pub fn name(&self) -> &'static str {
        self.profile().name
    }

    /// The profile for a given input set.
    pub fn profile_with(&self, input: InputSet) -> Profile {
        match input {
            InputSet::MinneLgred => self.profile(),
            InputSet::Reference => self.profile().reference_variant(),
        }
    }

    /// The statistical profile of this benchmark (MinneSPEC `lgred`
    /// inputs, as in the paper).
    pub fn profile(&self) -> Profile {
        match self {
            Benchmark::Mcf => Profile {
                name: "181.mcf",
                mix: InstrMix {
                    load: 0.32,
                    store: 0.09,
                    int_mul: 0.01,
                    fp_alu: 0.0,
                    fp_mul: 0.0,
                },
                // Pointer chasing: short dependency distances, little ILP.
                dep_p: 0.55,
                two_src_frac: 0.35,
                chase_frac: 0.97,
                code_blocks: 420,
                block_len_mean: 5.3,
                branch_noise: 0.06,
                loop_back_prob: 0.45,
                loop_bias: (0.9, 0.96),
                hot_code_frac: 0.7,
                call_frac: 0.15,
                blocks_per_fn: 10.0,
                regions: vec![
                    MemRegion {
                        size: 8 * KB,
                        weight: 0.33,
                        sequential: 0.85,
                    },
                    MemRegion {
                        size: 48 * KB,
                        weight: 0.44,
                        sequential: 0.65,
                    },
                    MemRegion {
                        size: 768 * KB,
                        weight: 0.13,
                        sequential: 0.1,
                    },
                    MemRegion {
                        size: 24 * MB,
                        weight: 0.05,
                        sequential: 0.05,
                    },
                ],
            },
            Benchmark::Crafty => Profile {
                name: "186.crafty",
                mix: InstrMix {
                    load: 0.27,
                    store: 0.07,
                    int_mul: 0.02,
                    fp_alu: 0.0,
                    fp_mul: 0.0,
                },
                dep_p: 0.35,
                two_src_frac: 0.40,
                chase_frac: 0.1,
                code_blocks: 4000,
                block_len_mean: 6.5,
                branch_noise: 0.12,
                loop_back_prob: 0.18,
                loop_bias: (0.9, 0.96),
                hot_code_frac: 0.4,
                call_frac: 0.22,
                blocks_per_fn: 14.0,
                regions: vec![
                    MemRegion {
                        size: 8 * KB,
                        weight: 0.48,
                        sequential: 0.9,
                    },
                    MemRegion {
                        size: 32 * KB,
                        weight: 0.49,
                        sequential: 0.85,
                    },
                    MemRegion {
                        size: 640 * KB,
                        weight: 0.025,
                        sequential: 0.5,
                    },
                    MemRegion {
                        size: 2 * MB,
                        weight: 0.005,
                        sequential: 0.3,
                    },
                ],
            },
            Benchmark::Parser => Profile {
                name: "197.parser",
                mix: InstrMix {
                    load: 0.26,
                    store: 0.10,
                    int_mul: 0.01,
                    fp_alu: 0.0,
                    fp_mul: 0.0,
                },
                dep_p: 0.45,
                two_src_frac: 0.35,
                chase_frac: 0.35,
                code_blocks: 2500,
                block_len_mean: 5.8,
                branch_noise: 0.09,
                loop_back_prob: 0.25,
                loop_bias: (0.9, 0.96),
                hot_code_frac: 0.5,
                call_frac: 0.2,
                blocks_per_fn: 12.0,
                regions: vec![
                    MemRegion {
                        size: 8 * KB,
                        weight: 0.44,
                        sequential: 0.88,
                    },
                    MemRegion {
                        size: 32 * KB,
                        weight: 0.47,
                        sequential: 0.8,
                    },
                    MemRegion {
                        size: MB,
                        weight: 0.06,
                        sequential: 0.3,
                    },
                    MemRegion {
                        size: 8 * MB,
                        weight: 0.03,
                        sequential: 0.15,
                    },
                ],
            },
            Benchmark::Perlbmk => Profile {
                name: "253.perlbmk",
                mix: InstrMix {
                    load: 0.28,
                    store: 0.14,
                    int_mul: 0.01,
                    fp_alu: 0.0,
                    fp_mul: 0.0,
                },
                dep_p: 0.45,
                two_src_frac: 0.35,
                chase_frac: 0.25,
                code_blocks: 5000,
                block_len_mean: 6.2,
                branch_noise: 0.07,
                loop_back_prob: 0.15,
                loop_bias: (0.91, 0.97),
                hot_code_frac: 0.35,
                call_frac: 0.25,
                blocks_per_fn: 12.0,
                regions: vec![
                    MemRegion {
                        size: 8 * KB,
                        weight: 0.46,
                        sequential: 0.9,
                    },
                    MemRegion {
                        size: 40 * KB,
                        weight: 0.49,
                        sequential: 0.82,
                    },
                    MemRegion {
                        size: 1536 * KB,
                        weight: 0.04,
                        sequential: 0.5,
                    },
                    MemRegion {
                        size: 4 * MB,
                        weight: 0.01,
                        sequential: 0.3,
                    },
                ],
            },
            Benchmark::Vortex => Profile {
                name: "255.vortex",
                mix: InstrMix {
                    load: 0.30,
                    store: 0.14,
                    int_mul: 0.01,
                    fp_alu: 0.0,
                    fp_mul: 0.0,
                },
                dep_p: 0.40,
                two_src_frac: 0.35,
                chase_frac: 0.25,
                code_blocks: 6000,
                block_len_mean: 6.8,
                branch_noise: 0.035,
                loop_back_prob: 0.12,
                loop_bias: (0.92, 0.97),
                hot_code_frac: 0.3,
                call_frac: 0.25,
                blocks_per_fn: 14.0,
                regions: vec![
                    MemRegion {
                        size: 8 * KB,
                        weight: 0.46,
                        sequential: 0.9,
                    },
                    MemRegion {
                        size: 48 * KB,
                        weight: 0.5,
                        sequential: 0.85,
                    },
                    MemRegion {
                        size: 2 * MB,
                        weight: 0.035,
                        sequential: 0.5,
                    },
                    MemRegion {
                        size: 6 * MB,
                        weight: 0.005,
                        sequential: 0.3,
                    },
                ],
            },
            Benchmark::Twolf => Profile {
                name: "300.twolf",
                mix: InstrMix {
                    load: 0.27,
                    store: 0.09,
                    int_mul: 0.03,
                    fp_alu: 0.04,
                    fp_mul: 0.02,
                },
                dep_p: 0.45,
                two_src_frac: 0.40,
                chase_frac: 0.3,
                code_blocks: 1000,
                block_len_mean: 6.0,
                branch_noise: 0.08,
                loop_back_prob: 0.35,
                loop_bias: (0.9, 0.96),
                hot_code_frac: 0.6,
                call_frac: 0.18,
                blocks_per_fn: 12.0,
                regions: vec![
                    MemRegion {
                        size: 8 * KB,
                        weight: 0.42,
                        sequential: 0.85,
                    },
                    MemRegion {
                        size: 24 * KB,
                        weight: 0.47,
                        sequential: 0.75,
                    },
                    MemRegion {
                        size: 1536 * KB,
                        weight: 0.08,
                        sequential: 0.2,
                    },
                    MemRegion {
                        size: 3 * MB,
                        weight: 0.01,
                        sequential: 0.2,
                    },
                ],
            },
            Benchmark::Equake => Profile {
                name: "183.equake",
                mix: InstrMix {
                    load: 0.34,
                    store: 0.10,
                    int_mul: 0.01,
                    fp_alu: 0.22,
                    fp_mul: 0.12,
                },
                dep_p: 0.25,
                two_src_frac: 0.50,
                chase_frac: 0.05,
                code_blocks: 500,
                block_len_mean: 11.5,
                branch_noise: 0.01,
                loop_back_prob: 0.75,
                loop_bias: (0.97, 0.995),
                hot_code_frac: 0.85,
                call_frac: 0.1,
                blocks_per_fn: 16.0,
                regions: vec![
                    MemRegion {
                        size: 8 * KB,
                        weight: 0.33,
                        sequential: 0.88,
                    },
                    MemRegion {
                        size: 32 * KB,
                        weight: 0.37,
                        sequential: 0.7,
                    },
                    MemRegion {
                        size: 8 * MB,
                        weight: 0.3,
                        sequential: 0.97,
                    },
                ],
            },
            Benchmark::Ammp => Profile {
                name: "188.ammp",
                mix: InstrMix {
                    load: 0.29,
                    store: 0.08,
                    int_mul: 0.01,
                    fp_alu: 0.24,
                    fp_mul: 0.15,
                },
                dep_p: 0.28,
                two_src_frac: 0.50,
                chase_frac: 0.08,
                code_blocks: 700,
                block_len_mean: 13.0,
                branch_noise: 0.015,
                loop_back_prob: 0.7,
                loop_bias: (0.96, 0.99),
                hot_code_frac: 0.8,
                call_frac: 0.1,
                blocks_per_fn: 16.0,
                regions: vec![
                    MemRegion {
                        size: 8 * KB,
                        weight: 0.38,
                        sequential: 0.88,
                    },
                    MemRegion {
                        size: 48 * KB,
                        weight: 0.42,
                        sequential: 0.7,
                    },
                    MemRegion {
                        size: 4 * MB,
                        weight: 0.2,
                        sequential: 0.9,
                    },
                ],
            },
        }
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown benchmark name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBenchmarkError(String);

impl fmt::Display for ParseBenchmarkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown benchmark {:?}", self.0)
    }
}

impl std::error::Error for ParseBenchmarkError {}

impl FromStr for Benchmark {
    type Err = ParseBenchmarkError;

    /// Parses either the full SPEC name (`"181.mcf"`) or the short name
    /// (`"mcf"`), case-insensitively.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.to_ascii_lowercase();
        Benchmark::all()
            .into_iter()
            .find(|b| {
                let name = b.name();
                name == lower || name.split('.').nth(1) == Some(lower.as_str())
            })
            .ok_or_else(|| ParseBenchmarkError(s.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_names_are_unique() {
        let names: std::collections::HashSet<_> =
            Benchmark::all().iter().map(|b| b.name()).collect();
        assert_eq!(names.len(), 8);
    }

    #[test]
    fn parse_accepts_short_and_long_names() {
        assert_eq!("mcf".parse::<Benchmark>().unwrap(), Benchmark::Mcf);
        assert_eq!("181.mcf".parse::<Benchmark>().unwrap(), Benchmark::Mcf);
        assert_eq!("VORTEX".parse::<Benchmark>().unwrap(), Benchmark::Vortex);
        assert!("gcc".parse::<Benchmark>().is_err());
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Benchmark::Twolf.to_string(), "300.twolf");
    }

    #[test]
    fn fp_benchmarks_have_fp_work() {
        for b in [Benchmark::Equake, Benchmark::Ammp] {
            let p = b.profile();
            assert!(p.mix.fp_alu + p.mix.fp_mul > 0.2, "{b} lacks FP work");
        }
        assert_eq!(Benchmark::Mcf.profile().mix.fp_alu, 0.0);
    }

    #[test]
    fn fp_benchmarks_are_more_predictable() {
        let int_noise = Benchmark::Crafty.profile().branch_noise;
        for b in [Benchmark::Equake, Benchmark::Ammp] {
            assert!(b.profile().branch_noise < int_noise / 2.0);
        }
    }
}
