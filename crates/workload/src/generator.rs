//! Expansion of a [`Profile`] into a dynamic instruction stream.

use ppm_rng::{derive_seed, Geometric, Rng};
use ppm_sim::{Instr, Op};

use crate::{Benchmark, Profile};

/// Register dependences further back than this are always ready in any
/// realistic window; capping keeps distances meaningful.
const MAX_DEP_DIST: u64 = 48;

/// Bound on the walk's call stack; calls made with a full stack lose
/// their oldest return address (which then returns to `main`).
const MAX_CALL_DEPTH: usize = 64;

#[derive(Debug, Clone, PartialEq)]
enum BlockKind {
    /// A conditional branch: taken with `bias` to `succ_taken`.
    Cond { bias: f64, succ_taken: usize },
    /// A call site. Direct calls have one candidate entry; indirect
    /// calls (function pointers, virtual dispatch) choose among several
    /// per visit.
    Call { callee_entries: Vec<usize> },
    /// The last block of a function: returns through the call stack.
    Return,
}

#[derive(Debug, Clone)]
struct Block {
    pc: u64,
    /// Number of non-branch instructions; the op classes are drawn per
    /// visit so the dynamic mix matches the profile exactly.
    body_len: usize,
    kind: BlockKind,
    succ_fall: usize,
}

#[derive(Debug, Clone)]
struct RegionStream {
    base: u64,
    size: u64,
    weight: f64,
    sequential: f64,
    ptr: u64,
}

/// A deterministic synthetic instruction stream for one benchmark.
///
/// Construction builds a static control-flow graph from the profile:
/// the code is partitioned into *functions* of basic blocks; block
/// terminators are self-loops, biased forward conditional skips,
/// calls to other functions, or returns. Iteration walks this graph
/// with a call stack — the call/return structure is what gives the
/// stream a large, realistic active instruction footprint while keeping
/// individual branches predictable. Memory addresses come from the
/// profile's working-set regions.
///
/// The stream depends only on `(benchmark, seed)` — never on the
/// processor configuration.
///
/// # Examples
///
/// ```
/// use ppm_workload::{Benchmark, TraceGenerator};
///
/// let a: Vec<_> = TraceGenerator::new(Benchmark::Vortex, 7).take(100).collect();
/// let b: Vec<_> = TraceGenerator::new(Benchmark::Vortex, 7).take(100).collect();
/// assert_eq!(a, b); // bit-identical across constructions
/// ```
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    blocks: Vec<Block>,
    regions: Vec<RegionStream>,
    region_weights: Vec<f64>,
    op_weights: [f64; 6],
    dep_dist: Geometric,
    two_src_frac: f64,
    walk: Rng,
    current_block: usize,
    body_index: usize,
    call_stack: Vec<usize>,
    chase_frac: f64,
    /// Instructions since the last emitted load (for pointer chasing).
    since_last_load: u32,
}

/// Non-branch op classes, aligned with the weight vector.
const OP_CLASSES: [Op; 6] = [
    Op::Load,
    Op::Store,
    Op::IntMul,
    Op::FpAlu,
    Op::FpMul,
    Op::IntAlu,
];

impl TraceGenerator {
    /// Builds the generator for a benchmark with a given seed
    /// (MinneSPEC `lgred` inputs).
    pub fn new(benchmark: Benchmark, seed: u64) -> Self {
        Self::from_profile(&benchmark.profile(), seed)
    }

    /// Builds the generator for a benchmark with an explicit input set.
    pub fn with_input(benchmark: Benchmark, input: crate::InputSet, seed: u64) -> Self {
        Self::from_profile(&benchmark.profile_with(input), seed)
    }

    /// Builds the generator from an explicit profile (useful for custom
    /// workloads and for tests).
    ///
    /// # Panics
    ///
    /// Panics if the profile fails [`Profile::validate`].
    pub fn from_profile(profile: &Profile, seed: u64) -> Self {
        profile.validate();
        ppm_telemetry::counter("workload.generators").inc();
        let mut structure = Rng::seed_from_u64(derive_seed(seed, 0));
        let walk = Rng::seed_from_u64(derive_seed(seed, 1));

        let blocks = build_cfg(profile, &mut structure);
        let regions: Vec<RegionStream> = profile
            .regions
            .iter()
            .enumerate()
            .map(|(i, r)| RegionStream {
                // Regions live in widely separated address ranges so they
                // never alias in caches by accident.
                base: (i as u64 + 1) << 28,
                size: r.size,
                weight: r.weight,
                sequential: r.sequential,
                ptr: 0,
            })
            .collect();
        let region_weights = regions.iter().map(|r| r.weight).collect();
        let m = &profile.mix;
        let op_weights = [
            m.load,
            m.store,
            m.int_mul,
            m.fp_alu,
            m.fp_mul,
            (1.0 - m.load - m.store - m.int_mul - m.fp_alu - m.fp_mul).max(0.0),
        ];

        TraceGenerator {
            blocks,
            regions,
            region_weights,
            op_weights,
            dep_dist: Geometric::new(profile.dep_p),
            two_src_frac: profile.two_src_frac,
            walk,
            current_block: 0,
            body_index: 0,
            call_stack: Vec::new(),
            chase_frac: profile.chase_frac,
            since_last_load: u32::MAX,
        }
    }

    /// Number of static basic blocks in the synthetic CFG.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    fn dep(&mut self) -> u32 {
        self.dep_dist.sample(&mut self.walk).min(MAX_DEP_DIST) as u32
    }

    fn mem_address(&mut self) -> u64 {
        let idx = self.walk.weighted_index(&self.region_weights);
        let r = &mut self.regions[idx];
        if self.walk.chance(r.sequential) {
            let addr = r.base + r.ptr;
            r.ptr = (r.ptr + 8) % r.size;
            addr
        } else {
            r.base + self.walk.below(r.size / 8) * 8
        }
    }
}

impl Iterator for TraceGenerator {
    type Item = Instr;

    fn next(&mut self) -> Option<Instr> {
        let block = &self.blocks[self.current_block];
        let pc = block.pc + 4 * self.body_index as u64;
        if self.body_index < block.body_len {
            // Body instruction: class drawn from the mix per visit.
            let op = OP_CLASSES[self.walk.weighted_index(&self.op_weights)];
            self.body_index += 1;
            let s1 = self.dep();
            let s2 = if self.walk.chance(self.two_src_frac) {
                self.dep()
            } else {
                0
            };
            let instr = match op {
                Op::Load => {
                    let addr = self.mem_address();
                    // Pointer chasing: the address register of this load
                    // was produced by the previous load.
                    let s1 = if self.since_last_load <= MAX_DEP_DIST as u32
                        && self.walk.chance(self.chase_frac)
                    {
                        self.since_last_load
                    } else {
                        s1
                    };
                    self.since_last_load = 0;
                    Instr::load(pc, addr, s1, s2)
                }
                Op::Store => {
                    let addr = self.mem_address();
                    self.since_last_load = self.since_last_load.saturating_add(1);
                    Instr::store(pc, addr, s1, s2)
                }
                other => {
                    self.since_last_load = self.since_last_load.saturating_add(1);
                    Instr::alu(other, pc, s1, s2)
                }
            };
            return Some(instr);
        }
        // Block terminator.
        self.body_index = 0;
        self.since_last_load = self.since_last_load.saturating_add(1);
        match block.kind {
            BlockKind::Cond { bias, succ_taken } => {
                let taken = self.walk.chance(bias);
                let next = if taken { succ_taken } else { block.succ_fall };
                let target = self.blocks[next].pc;
                let s1 = self.dep();
                self.current_block = next;
                Some(Instr::branch(pc, taken, target, s1))
            }
            BlockKind::Call { ref callee_entries } => {
                let callee = *self.walk.choose(callee_entries);
                if self.call_stack.len() == MAX_CALL_DEPTH {
                    self.call_stack.remove(0);
                }
                self.call_stack.push(block.succ_fall);
                let target = self.blocks[callee].pc;
                self.current_block = callee;
                Some(Instr::call(pc, target))
            }
            BlockKind::Return => {
                let cont = self.call_stack.pop().unwrap_or(0);
                let target = self.blocks[cont].pc;
                self.current_block = cont;
                Some(Instr::ret(pc, target))
            }
        }
    }
}

/// Builds the static CFG: functions of blocks, block bodies, layout,
/// terminators and biases.
fn build_cfg(profile: &Profile, rng: &mut Rng) -> Vec<Block> {
    let n = profile.code_blocks;
    let body_len = Geometric::new(1.0 / profile.block_len_mean);
    // Conditional taken edges are short forward skips (if/else) within
    // the enclosing function.
    let skip_dist = Geometric::new(0.4);

    // Partition the n blocks into contiguous functions.
    let fn_size = Geometric::new(1.0 / profile.blocks_per_fn);
    let mut fn_bounds: Vec<(usize, usize)> = Vec::new(); // (entry, return)
    let mut start = 0usize;
    while start < n {
        let size = (fn_size.sample(rng) as usize).clamp(3, n - start);
        let size = if n - (start + size) < 3 {
            n - start
        } else {
            size
        };
        fn_bounds.push((start, start + size - 1));
        start += size;
    }
    let num_fns = fn_bounds.len();
    // A random fifth of the functions is "hot" and receives most calls.
    let hot_fns: Vec<usize> = {
        let mut all: Vec<usize> = (0..num_fns).collect();
        rng.shuffle(&mut all);
        all.truncate((num_fns / 5).max(1));
        all
    };

    let mut blocks = Vec::with_capacity(n);
    let mut pc = 0x0001_0000u64;
    for (f, &(entry, ret)) in fn_bounds.iter().enumerate() {
        for i in entry..=ret {
            let len = body_len.sample(rng) as usize;
            let body_len_count = len.saturating_sub(1);

            // Function 0 is the program's driver loop: every one of its
            // blocks calls out to a work function. This guarantees the
            // walk fans out across the call graph instead of getting
            // trapped on a callless path.
            let is_driver = f == 0 && num_fns > 1;
            let kind = if i == ret {
                BlockKind::Return
            } else if (is_driver || rng.chance(profile.call_frac)) && num_fns > 1 {
                // A call site: usually direct, sometimes indirect
                // (function pointer / virtual dispatch) with several
                // candidate callees chosen per visit.
                let pick_callee = |rng: &mut Rng| loop {
                    let c = if rng.chance(profile.hot_code_frac) {
                        hot_fns[rng.below(hot_fns.len() as u64) as usize]
                    } else {
                        rng.below(num_fns as u64) as usize
                    };
                    if c != f {
                        break fn_bounds[c].0;
                    }
                };
                let indirect = rng.chance(0.15);
                let count = if indirect { 4 } else { 1 };
                let callee_entries = (0..count).map(|_| pick_callee(rng)).collect();
                BlockKind::Call { callee_entries }
            } else {
                let is_loop = rng.chance(profile.loop_back_prob);
                let bias = if rng.chance(profile.branch_noise) {
                    // A data-dependent branch: irreducible entropy.
                    rng.range_f64(0.30, 0.70)
                } else if is_loop {
                    // Loops run ~1/(1-bias) iterations per entry.
                    rng.range_f64(profile.loop_bias.0, profile.loop_bias.1)
                } else {
                    // Most static branches are extremely consistent.
                    let b = rng.range_f64(0.98, 0.999);
                    if rng.chance(0.5) {
                        b
                    } else {
                        1.0 - b
                    }
                };
                let succ_taken = if is_loop {
                    i
                } else {
                    // Forward skip, clamped to the function's return.
                    (i + 1 + skip_dist.sample(rng) as usize).min(ret)
                };
                BlockKind::Cond { bias, succ_taken }
            };

            blocks.push(Block {
                pc,
                body_len: body_len_count,
                kind,
                succ_fall: (i + 1).min(n - 1),
            });
            pc += 4 * (body_len_count as u64 + 1);
        }
    }
    blocks
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_sim::{BranchKind, Processor, SimConfig};

    #[test]
    fn deterministic_per_seed_and_distinct_across_seeds() {
        let a: Vec<_> = TraceGenerator::new(Benchmark::Mcf, 1).take(500).collect();
        let b: Vec<_> = TraceGenerator::new(Benchmark::Mcf, 1).take(500).collect();
        let c: Vec<_> = TraceGenerator::new(Benchmark::Mcf, 2).take(500).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn instruction_mix_tracks_profile() {
        for bench in [Benchmark::Mcf, Benchmark::Equake] {
            let profile = bench.profile();
            let n = 60_000;
            let trace: Vec<_> = TraceGenerator::new(bench, 3).take(n).collect();
            let frac = |op: Op| trace.iter().filter(|i| i.op == op).count() as f64 / n as f64;
            let branches = frac(Op::Branch);
            // The call/return and loop structure length-biases block
            // visits, so allow a generous band around the static value.
            assert!(
                (branches - profile.branch_fraction()).abs() < 0.07,
                "{bench}: branch fraction {branches} vs {}",
                profile.branch_fraction()
            );
            // Loads as a fraction of non-branch instructions.
            let loads = frac(Op::Load) / (1.0 - branches);
            assert!(
                (loads - profile.mix.load).abs() < 0.03 + 0.02,
                "{bench}: load fraction {loads} vs {}",
                profile.mix.load
            );
            if bench == Benchmark::Equake {
                assert!(frac(Op::FpAlu) > 0.1, "equake needs FP work");
            }
        }
    }

    #[test]
    fn addresses_stay_inside_regions() {
        let profile = Benchmark::Parser.profile();
        let trace: Vec<_> = TraceGenerator::new(Benchmark::Parser, 5)
            .take(20_000)
            .collect();
        for i in trace.iter().filter(|i| i.op.is_mem()) {
            let region = (i.mem_addr >> 28) as usize - 1;
            assert!(region < profile.regions.len(), "address outside regions");
            let offset = i.mem_addr & ((1 << 28) - 1);
            assert!(
                offset < profile.regions[region].size,
                "offset {offset} beyond region {region}"
            );
        }
    }

    #[test]
    fn branch_targets_match_block_pcs() {
        let gen = TraceGenerator::new(Benchmark::Twolf, 9);
        let pcs: std::collections::HashSet<u64> = gen.blocks.iter().map(|b| b.pc).collect();
        for i in gen.clone().take(10_000) {
            if i.op == Op::Branch && i.taken {
                assert!(
                    pcs.contains(&i.target),
                    "target {:#x} is no block",
                    i.target
                );
            }
        }
    }

    #[test]
    fn returns_go_back_to_call_continuations() {
        // Every return's target must be the instruction after some
        // earlier call (or main's entry after stack underflow).
        let trace: Vec<_> = TraceGenerator::new(Benchmark::Vortex, 2)
            .take(50_000)
            .collect();
        let mut stack = Vec::new();
        let main_pc = 0x0001_0000;
        for i in &trace {
            if i.op != Op::Branch {
                continue;
            }
            match i.kind {
                BranchKind::Call => stack.push(i.pc + 4),
                BranchKind::Return => {
                    let expected = stack.pop().unwrap_or(main_pc);
                    assert_eq!(i.target, expected, "return to {:#x}", i.target);
                }
                BranchKind::Conditional => {}
            }
        }
    }

    #[test]
    fn calls_are_frequent_enough_to_matter() {
        let trace: Vec<_> = TraceGenerator::new(Benchmark::Vortex, 2)
            .take(50_000)
            .collect();
        let calls = trace
            .iter()
            .filter(|i| i.kind == BranchKind::Call && i.op == Op::Branch)
            .count();
        assert!(calls > 200, "only {calls} calls in 50k instructions");
    }

    #[test]
    fn active_code_footprint_scales_with_profile() {
        let lines = |b: Benchmark| {
            TraceGenerator::new(b, 1)
                .take(200_000)
                .map(|i| i.pc >> 6)
                .collect::<std::collections::HashSet<u64>>()
                .len()
        };
        let vortex = lines(Benchmark::Vortex);
        let mcf = lines(Benchmark::Mcf);
        assert!(
            vortex * 64 > 32 * 1024,
            "vortex active code only {} KB",
            vortex * 64 / 1024
        );
        assert!(
            mcf * 64 < 12 * 1024,
            "mcf active code {} KB",
            mcf * 64 / 1024
        );
    }

    #[test]
    fn code_footprint_matches_profile_estimate() {
        for bench in Benchmark::all() {
            let gen = TraceGenerator::new(bench, 1);
            let profile = bench.profile();
            let max_pc = gen.blocks.iter().map(|b| b.pc).max().unwrap();
            let footprint = max_pc - 0x0001_0000;
            let estimate = profile.code_footprint();
            assert!(
                footprint as f64 > 0.5 * estimate as f64
                    && (footprint as f64) < 2.0 * estimate as f64,
                "{bench}: footprint {footprint} vs estimate {estimate}"
            );
        }
    }

    /// End-to-end: the benchmark surrogates must reproduce the
    /// qualitative sensitivities the paper reports.
    #[test]
    fn mcf_is_memory_bound_and_fp_runs_fast() {
        let run = |b: Benchmark| {
            let trace = TraceGenerator::new(b, 1).take(150_000);
            Processor::new(SimConfig::default()).run(trace).cpi()
        };
        let mcf = run(Benchmark::Mcf);
        let equake = run(Benchmark::Equake);
        assert!(mcf > 1.2, "mcf cpi {mcf} should be memory bound");
        assert!(equake < mcf, "equake ({equake}) should outrun mcf ({mcf})");
    }

    #[test]
    fn mcf_responds_to_l2_and_vortex_to_il1() {
        let run = |b: Benchmark, c: SimConfig| {
            let trace = TraceGenerator::new(b, 1).take(250_000);
            Processor::new(c).run(trace).cpi()
        };
        let small_l2 = SimConfig::builder().l2_size_kb(256).build().unwrap();
        let big_l2 = SimConfig::builder().l2_size_kb(8192).build().unwrap();
        let mcf_gain = run(Benchmark::Mcf, small_l2.clone()) / run(Benchmark::Mcf, big_l2.clone());
        assert!(mcf_gain > 1.05, "mcf L2 sensitivity too weak: {mcf_gain}");

        let small_il1 = SimConfig::builder().il1_size_kb(8).build().unwrap();
        let big_il1 = SimConfig::builder().il1_size_kb(64).build().unwrap();
        let vortex_gain =
            run(Benchmark::Vortex, small_il1.clone()) / run(Benchmark::Vortex, big_il1.clone());
        let mcf_il1_gain = run(Benchmark::Mcf, small_il1) / run(Benchmark::Mcf, big_il1);
        assert!(
            vortex_gain > 1.03,
            "vortex il1 sensitivity too weak: {vortex_gain}"
        );
        assert!(
            vortex_gain > mcf_il1_gain,
            "vortex ({vortex_gain}) should be more il1-sensitive than mcf ({mcf_il1_gain})"
        );
    }

    #[test]
    fn reference_inputs_shift_weight_to_the_memory_system() {
        // The paper's §3 claim: with reference inputs the memory
        // subsystem matters more. Check that the L2-latency sensitivity
        // grows under the reference variant.
        let run = |input: crate::InputSet, l2_lat: u32| {
            let c = SimConfig::builder().l2_lat(l2_lat).build().unwrap();
            let trace = TraceGenerator::with_input(Benchmark::Twolf, input, 1).take(120_000);
            Processor::new(c).run(trace).cpi()
        };
        let lg_swing = run(crate::InputSet::MinneLgred, 20) - run(crate::InputSet::MinneLgred, 5);
        let ref_swing = run(crate::InputSet::Reference, 20) - run(crate::InputSet::Reference, 5);
        assert!(
            ref_swing > lg_swing,
            "reference inputs should amplify L2 sensitivity: {ref_swing} vs {lg_swing}"
        );
    }

    #[test]
    fn branch_mispredict_rates_are_benchmark_dependent() {
        let rate = |b: Benchmark| {
            let trace = TraceGenerator::new(b, 1).take(120_000);
            Processor::new(SimConfig::default())
                .run(trace)
                .mispredict_rate()
        };
        let crafty = rate(Benchmark::Crafty);
        let equake = rate(Benchmark::Equake);
        assert!(crafty > 0.03, "crafty should mispredict: {crafty}");
        assert!(equake < crafty, "equake ({equake}) vs crafty ({crafty})");
    }
}
