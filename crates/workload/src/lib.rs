//! Deterministic synthetic workload surrogates for the eight SPEC
//! CPU2000 benchmarks studied in the paper.
//!
//! The original study drives its simulator with traces of PowerPC SPEC
//! binaries over MinneSPEC `lgred` inputs — artifacts we do not have.
//! This crate substitutes *statistical workload models*: each benchmark
//! is described by a [`Profile`] capturing its published
//! characteristics —
//!
//! * instruction mix (loads/stores/branches/integer/floating point),
//! * register dependency-distance distribution (instruction-level
//!   parallelism),
//! * a synthetic control-flow graph whose size sets the code footprint
//!   (instruction-cache sensitivity) and whose per-branch biases set
//!   branch predictability,
//! * a hierarchy of data working sets (stack / hot heap / main data)
//!   that determines L1D and L2 sensitivity — e.g. `mcf` walks a
//!   multi-megabyte random region (memory-bound at every cache size)
//!   while `twolf`'s main set fits in mid-range L2s.
//!
//! A [`TraceGenerator`] expands a profile into a dynamic instruction
//! stream. The stream is a pure function of `(benchmark, seed)` — it
//! never depends on the processor configuration, so the simulated CPI
//! is a deterministic function of the design point, as the
//! surrogate-modeling methodology requires.
//!
//! # Examples
//!
//! ```
//! use ppm_workload::{Benchmark, TraceGenerator};
//! use ppm_sim::{Processor, SimConfig};
//!
//! let trace = TraceGenerator::new(Benchmark::Mcf, 1).take(20_000);
//! let stats = Processor::new(SimConfig::default()).run(trace);
//! assert!(stats.cpi() > 1.0); // mcf is memory bound
//! ```

mod benchmark;
mod generator;
mod profile;

pub use benchmark::Benchmark;
pub use generator::TraceGenerator;
pub use profile::{InputSet, InstrMix, MemRegion, Profile};
