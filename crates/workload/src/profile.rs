//! Statistical workload descriptions.

/// Fractions of instruction classes in the dynamic stream. Whatever is
/// left after the listed classes is single-cycle integer ALU work.
///
/// The branch fraction is expressed indirectly: every synthetic basic
/// block ends in one branch, so `1 / mean_block_len` is the branch
/// fraction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstrMix {
    /// Fraction of loads (of non-branch instructions).
    pub load: f64,
    /// Fraction of stores.
    pub store: f64,
    /// Fraction of integer multiplies.
    pub int_mul: f64,
    /// Fraction of FP adds.
    pub fp_alu: f64,
    /// Fraction of FP multiplies.
    pub fp_mul: f64,
}

impl InstrMix {
    /// Validates that the fractions are sane.
    ///
    /// # Panics
    ///
    /// Panics if any fraction is negative or the sum exceeds 1.
    pub fn validate(&self) {
        let parts = [
            self.load,
            self.store,
            self.int_mul,
            self.fp_alu,
            self.fp_mul,
        ];
        assert!(
            parts.iter().all(|&f| (0.0..=1.0).contains(&f)),
            "mix fractions must be in [0, 1]"
        );
        assert!(
            parts.iter().sum::<f64>() <= 1.0 + 1e-9,
            "mix fractions exceed 1"
        );
    }
}

/// One data working-set region.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemRegion {
    /// Region size in bytes.
    pub size: u64,
    /// Probability that a memory access targets this region.
    pub weight: f64,
    /// Probability an access continues the region's sequential stream
    /// (the complement is a uniform random access within the region).
    pub sequential: f64,
}

/// A complete statistical description of a benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    /// Benchmark name (e.g. `"181.mcf"`).
    pub name: &'static str,
    /// Instruction mix.
    pub mix: InstrMix,
    /// Geometric parameter of the register dependency-distance
    /// distribution; smaller means longer distances (more ILP).
    pub dep_p: f64,
    /// Fraction of instructions with a second register source.
    pub two_src_frac: f64,
    /// Fraction of loads whose address depends on the previous load
    /// (pointer chasing); serializes misses and caps memory-level
    /// parallelism, as in `mcf`.
    pub chase_frac: f64,
    /// Number of static basic blocks in the synthetic CFG.
    pub code_blocks: usize,
    /// Mean basic-block length in instructions (1/branch-fraction).
    pub block_len_mean: f64,
    /// Fraction of branches that are effectively random (bias 0.5);
    /// the rest are strongly biased and predictable.
    pub branch_noise: f64,
    /// Probability a block's taken edge is a short backward (loop) edge.
    pub loop_back_prob: f64,
    /// Range of per-visit continue probabilities for loop branches;
    /// the mean iteration count is `1 / (1 - bias)`.
    pub loop_bias: (f64, f64),
    /// Fraction of calls that target the "hot" fifth of the functions;
    /// concentrates execution like real programs.
    pub hot_code_frac: f64,
    /// Fraction of non-loop block terminators that are function calls.
    pub call_frac: f64,
    /// Mean function size in basic blocks.
    pub blocks_per_fn: f64,
    /// Data working-set regions (weights are normalized internally).
    pub regions: Vec<MemRegion>,
}

impl Profile {
    /// Validates the profile.
    ///
    /// # Panics
    ///
    /// Panics if any component is out of range.
    pub fn validate(&self) {
        self.mix.validate();
        assert!(self.dep_p > 0.0 && self.dep_p <= 1.0, "dep_p out of range");
        assert!((0.0..=1.0).contains(&self.two_src_frac));
        assert!(
            (0.0..=1.0).contains(&self.chase_frac),
            "chase_frac out of range"
        );
        assert!(self.code_blocks >= 4, "need at least 4 blocks");
        assert!(
            self.block_len_mean >= 2.0,
            "blocks must average >= 2 instructions"
        );
        assert!((0.0..=1.0).contains(&self.branch_noise));
        assert!((0.0..=1.0).contains(&self.loop_back_prob));
        assert!(
            self.loop_bias.0 > 0.5
                && self.loop_bias.1 < 1.0
                && self.loop_bias.0 <= self.loop_bias.1,
            "loop_bias must be an increasing range within (0.5, 1)"
        );
        assert!((0.0..=1.0).contains(&self.hot_code_frac));
        assert!(
            (0.0..=0.5).contains(&self.call_frac),
            "call_frac out of range"
        );
        assert!(
            self.blocks_per_fn >= 3.0,
            "functions need >= 3 blocks on average"
        );
        assert!(!self.regions.is_empty(), "need at least one data region");
        for r in &self.regions {
            assert!(r.size >= 64, "region smaller than a cache line");
            assert!(r.weight > 0.0, "region weight must be positive");
            assert!((0.0..=1.0).contains(&r.sequential));
        }
    }

    /// Approximate static code footprint in bytes (4-byte instructions).
    pub fn code_footprint(&self) -> u64 {
        (self.code_blocks as f64 * self.block_len_mean * 4.0) as u64
    }

    /// Approximate dynamic branch fraction.
    pub fn branch_fraction(&self) -> f64 {
        1.0 / self.block_len_mean
    }

    /// Derives the *reference-input* variant of this profile.
    ///
    /// The paper's §3 notes that parameter significance is input
    /// dependent: "the memory subsystem parameters would have a higher
    /// influence on performance if the SPEC reference inputs were
    /// used" (the study itself uses MinneSPEC `lgred`). Reference
    /// inputs mean much larger data sets: every heap region of 256 KiB
    /// or more grows 8x and receives proportionally more accesses,
    /// while stack and hot structures are unchanged.
    pub fn reference_variant(&self) -> Profile {
        let mut p = self.clone();
        p.regions = p
            .regions
            .iter()
            .map(|r| {
                if r.size >= 256 * 1024 {
                    MemRegion {
                        size: r.size * 8,
                        weight: r.weight * 1.8,
                        sequential: r.sequential,
                    }
                } else {
                    *r
                }
            })
            .collect();
        p
    }
}

/// Which data-set scale a benchmark runs with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum InputSet {
    /// MinneSPEC `lgred` reduced inputs — what the paper simulates.
    #[default]
    MinneLgred,
    /// Full SPEC reference inputs (approximated: 8x larger heap
    /// regions carrying more of the access stream).
    Reference,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Benchmark;

    #[test]
    fn all_benchmark_profiles_validate() {
        for b in Benchmark::all() {
            b.profile().validate();
        }
    }

    #[test]
    fn code_footprints_span_the_il1_range() {
        // At least one benchmark fits in 8 KiB and at least one
        // pressures a 64 KiB I-cache, so il1_size matters for some
        // programs and not others (paper Table 5).
        let feet: Vec<u64> = Benchmark::all()
            .iter()
            .map(|b| b.profile().code_footprint())
            .collect();
        assert!(feet.iter().any(|&f| f <= 10 * 1024), "{feet:?}");
        assert!(feet.iter().any(|&f| f >= 40 * 1024), "{feet:?}");
    }

    #[test]
    fn mcf_is_the_most_memory_hungry() {
        let total = |b: Benchmark| -> u64 { b.profile().regions.iter().map(|r| r.size).sum() };
        let mcf = total(Benchmark::Mcf);
        for b in Benchmark::all() {
            if b != Benchmark::Mcf {
                assert!(mcf >= total(b), "{b:?} outweighs mcf");
            }
        }
    }

    #[test]
    #[should_panic(expected = "exceed 1")]
    fn overfull_mix_panics() {
        InstrMix {
            load: 0.8,
            store: 0.8,
            int_mul: 0.0,
            fp_alu: 0.0,
            fp_mul: 0.0,
        }
        .validate();
    }

    #[test]
    fn reference_variant_grows_heap_regions_only() {
        let lg = Benchmark::Twolf.profile();
        let rf = lg.reference_variant();
        for (a, b) in lg.regions.iter().zip(&rf.regions) {
            if a.size >= 256 * 1024 {
                assert_eq!(b.size, a.size * 8);
                assert!(b.weight > a.weight);
            } else {
                assert_eq!(a, b);
            }
        }
        rf.validate();
    }

    #[test]
    fn profile_with_dispatches_on_input_set() {
        use crate::InputSet;
        let a = Benchmark::Mcf.profile_with(InputSet::MinneLgred);
        let b = Benchmark::Mcf.profile_with(InputSet::Reference);
        assert_eq!(a, Benchmark::Mcf.profile());
        assert!(b.regions.iter().map(|r| r.size).max() > a.regions.iter().map(|r| r.size).max());
    }

    #[test]
    fn branch_fraction_is_reciprocal_block_length() {
        let p = Benchmark::Equake.profile();
        assert!((p.branch_fraction() - 1.0 / p.block_len_mean).abs() < 1e-12);
    }
}
