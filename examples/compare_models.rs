//! Linear vs non-linear models (paper §4.2): fit both to the *same*
//! simulated sample and score them on the same held-out test points.
//!
//! Run with `cargo run --release --example compare_models`.

use ppm::model::builder::{BuildConfig, RbfModelBuilder};
use ppm::model::metrics::ErrorStats;
use ppm::model::response::{eval_batch, SimulatorResponse};
use ppm::model::space::DesignSpace;
use ppm::model::study::fit_linear_baseline;
use ppm::workload::Benchmark;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let space = DesignSpace::paper_table1();
    let test_space = DesignSpace::paper_table2();

    println!(
        "{:<12} {:>12} {:>12} {:>8}",
        "benchmark", "rbf mean%", "linear mean%", "ratio"
    );
    for bench in [Benchmark::Mcf, Benchmark::Equake] {
        let response = SimulatorResponse::new(bench, 100_000);
        let builder =
            RbfModelBuilder::new(space.clone(), BuildConfig::default().with_sample_size(90));
        let built = builder.build(&response)?;

        // Same sample, linear model with main effects + interactions
        // and AIC backward elimination.
        let linear = fit_linear_baseline(&built.design, &built.responses)?;

        // Same test set for both.
        let test = builder.test_points(&test_space, 30);
        let actual = eval_batch(&response, &test, 1)?;
        let rbf_stats = built.evaluate(&test, &actual);
        let lin_pred: Vec<f64> = test.iter().map(|p| linear.predict(p)).collect();
        let lin_stats = ErrorStats::from_predictions(&lin_pred, &actual);

        println!(
            "{:<12} {:>12.2} {:>12.2} {:>8.1}x",
            bench.to_string(),
            rbf_stats.mean_pct,
            lin_stats.mean_pct,
            lin_stats.mean_pct / rbf_stats.mean_pct
        );
    }
    println!("\n(the paper reports 2.1% vs 6.5% for mcf at n=200 — the RBF advantage)");
    Ok(())
}
