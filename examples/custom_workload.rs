//! Modeling a custom workload: the library is not limited to the eight
//! SPEC surrogates — define your own statistical profile and the whole
//! pipeline (trace synthesis, simulation, surrogate modeling) works
//! unchanged.
//!
//! Run with `cargo run --release --example custom_workload`.

use ppm::model::builder::{BuildConfig, RbfModelBuilder};
use ppm::model::response::{FnResponse, Response};
use ppm::model::space::DesignSpace;
use ppm::sim::{Processor, SimConfig};
use ppm::workload::{InstrMix, MemRegion, Profile, TraceGenerator};

/// A made-up "in-memory database" workload: load heavy, large flat
/// working set, moderately predictable control.
fn imdb_profile() -> Profile {
    Profile {
        name: "imdb",
        mix: InstrMix {
            load: 0.38,
            store: 0.12,
            int_mul: 0.01,
            fp_alu: 0.0,
            fp_mul: 0.0,
        },
        dep_p: 0.45,
        two_src_frac: 0.35,
        chase_frac: 0.45,
        code_blocks: 1500,
        block_len_mean: 6.0,
        branch_noise: 0.10,
        loop_back_prob: 0.30,
        loop_bias: (0.90, 0.96),
        hot_code_frac: 0.5,
        call_frac: 0.18,
        blocks_per_fn: 12.0,
        regions: vec![
            MemRegion {
                size: 8 * 1024,
                weight: 0.35,
                sequential: 0.85,
            },
            MemRegion {
                size: 64 * 1024,
                weight: 0.40,
                sequential: 0.55,
            },
            MemRegion {
                size: 16 * 1024 * 1024,
                weight: 0.25,
                sequential: 0.25,
            },
        ],
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = imdb_profile();
    println!(
        "custom workload: {} ({} KB code, {:.0}% loads)",
        profile.name,
        profile.code_footprint() / 1024,
        100.0 * profile.mix.load
    );

    // A response over the paper's design space backed by the custom
    // trace.
    let space = DesignSpace::paper_table1();
    let space_for_response = space.clone();
    let response = FnResponse::new(9, move |unit: &[f64]| {
        let config: SimConfig = space_for_response.to_config(unit);
        let trace = TraceGenerator::from_profile(&imdb_profile(), 1).take(80_000);
        Processor::new(config).run(trace).cpi()
    })?;

    println!("building a CPI model from 60 simulations...");
    let built = RbfModelBuilder::new(space.clone(), BuildConfig::default().with_sample_size(60))
        .build(&response)?;

    // How sensitive is this workload to its L2, according to the model?
    let mut base = [0.5; 9];
    base[4] = 0.0;
    let small_l2 = built.predict(&base);
    base[4] = 1.0;
    let big_l2 = built.predict(&base);
    println!(
        "model says: CPI {:.3} at 256KB L2 vs {:.3} at 8MB L2 ({:+.1}% from the upgrade)",
        small_l2,
        big_l2,
        100.0 * (big_l2 - small_l2) / small_l2
    );

    // Spot-check with a real simulation at the mid-point.
    let mid = [0.5; 9];
    let sim = response.eval(&mid);
    let pred = built.predict(&mid);
    println!(
        "mid-range check: predicted {pred:.3} vs simulated {sim:.3} ({:.2}% error)",
        100.0 * ((pred - sim) / sim).abs()
    );
    Ok(())
}
