//! Design-space exploration: the use case the paper's introduction
//! motivates. Train a surrogate model once, then search thousands of
//! configurations for an optimum under design constraints — without
//! touching the simulator again.
//!
//! Here: find the best-performing mcf configuration whose "area budget"
//! rules out the biggest structures (ROB ≤ 96 entries, L2 ≤ 2 MiB) and
//! whose pipeline cannot be shallower than 10 stages.
//!
//! Run with `cargo run --release --example design_space_exploration`.

use ppm::model::builder::{BuildConfig, RbfModelBuilder};
use ppm::model::response::{Response, SimulatorResponse};
use ppm::model::space::DesignSpace;
use ppm::model::study::search_optimum;
use ppm::workload::Benchmark;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let space = DesignSpace::paper_table1();
    let response = SimulatorResponse::new(Benchmark::Mcf, 100_000);

    println!("training the surrogate (90 simulations)...");
    let built = RbfModelBuilder::new(space.clone(), BuildConfig::default().with_sample_size(90))
        .build(&response)?;

    // Constraints in engineering units (Table 1 order).
    let feasible = |actual: &[f64]| {
        let rob = actual[1];
        let l2_kb = actual[4];
        let depth = actual[0];
        rob <= 96.0 && l2_kb <= 2048.0 && depth >= 10.0
    };

    println!("searching 5000 candidate configurations through the model...");
    let result = search_optimum(&space, |x| built.predict(x), feasible, 5000, 7)
        .expect("the constraint region is non-empty");

    let config = space.to_config(&result.unit);
    println!("\nbest feasible configuration found:");
    println!(
        "  depth={} rob={} iq={} lsq={} L2={}KB lat={} il1={}KB dl1={}KB lat={}",
        config.pipe_depth,
        config.rob_size,
        config.iq_size(),
        config.lsq_size(),
        config.l2_size_kb,
        config.l2_lat,
        config.il1_size_kb,
        config.dl1_size_kb,
        config.dl1_lat
    );
    println!("  predicted CPI: {:.3}", result.predicted);

    // Verify the single winning point with one real simulation.
    let simulated = response.eval(&result.unit);
    println!(
        "  simulated CPI: {simulated:.3} ({:.2}% model error at the optimum)",
        100.0 * ((result.predicted - simulated) / simulated).abs()
    );
    println!("\n(one simulation to verify, instead of 5000 to search)");
    Ok(())
}
