//! Modeling power, not just performance — the extension the paper's
//! conclusion proposes: "similar models can be developed for other
//! metrics such as power consumption."
//!
//! Builds RBF models of energy-per-instruction (EPI) and energy–delay
//! product (EDP) for one benchmark, then shows how the *best* design
//! point shifts depending on the objective.
//!
//! Run with `cargo run --release --example power_model`.

use ppm::model::builder::{BuildConfig, RbfModelBuilder};
use ppm::model::response::{Metric, Response, SimulatorResponse};
use ppm::model::space::DesignSpace;
use ppm::model::study::search_optimum;
use ppm::workload::Benchmark;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let space = DesignSpace::paper_table1();
    let bench = Benchmark::Twolf;

    let mut models = Vec::new();
    for (name, metric) in [
        ("CPI", Metric::Cpi),
        ("EPI", Metric::Epi),
        ("EDP", Metric::Edp),
    ] {
        let response = SimulatorResponse::new(bench, 80_000).with_metric(metric);
        println!("building the {name} model (60 simulations)...");
        let built =
            RbfModelBuilder::new(space.clone(), BuildConfig::default().with_sample_size(60))
                .build(&response)?;
        // Spot-check accuracy at the center of the space.
        let mid = [0.5; 9];
        let pred = built.predict(&mid);
        let sim = response.eval(&mid);
        println!(
            "  {name}: {} centers, mid-point error {:.2}%",
            built.model.network.num_centers(),
            100.0 * ((pred - sim) / sim).abs()
        );
        models.push((name, built));
    }

    println!("\noptimal configurations per objective (unconstrained):");
    println!(
        "{:<6} {:>6} {:>5} {:>8} {:>7} {:>6} {:>6} {:>8}",
        "metric", "depth", "rob", "L2_KB", "L2_lat", "il1", "dl1", "value"
    );
    for (name, built) in &models {
        let result = search_optimum(&space, |x| built.predict(x), |_| true, 4000, 3)
            .expect("unconstrained search succeeds");
        let c = space.to_config(&result.unit);
        println!(
            "{:<6} {:>6} {:>5} {:>8} {:>7} {:>6} {:>6} {:>8.3}",
            name,
            c.pipe_depth,
            c.rob_size,
            c.l2_size_kb,
            c.l2_lat,
            c.il1_size_kb,
            c.dl1_size_kb,
            result.predicted
        );
    }
    println!(
        "\n(expected: the CPI optimum maxes out the structures; the EPI optimum \
         shrinks caches the workload does not need; EDP lands in between)"
    );
    Ok(())
}
