//! Quickstart: build a predictive CPI model for one benchmark and use
//! it in place of the simulator.
//!
//! Run with `cargo run --release --example quickstart`.

use ppm::model::builder::{BuildConfig, RbfModelBuilder};
use ppm::model::response::{Response, SimulatorResponse};
use ppm::model::space::DesignSpace;
use ppm::workload::Benchmark;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The design space: the paper's nine parameters (Table 1).
    let space = DesignSpace::paper_table1();

    // 2. The response to model: CPI of crafty, measured by the
    //    cycle-level simulator (100k instructions per design point).
    let response = SimulatorResponse::new(Benchmark::Crafty, 100_000);

    // 3. BuildRBFmodel: latin hypercube sample with the best L2-star
    //    discrepancy, detailed simulation at each point, RBF network
    //    with tree-derived centers and AICc selection.
    println!("building the model (simulating 60 design points)...");
    let config = BuildConfig::default().with_sample_size(60);
    let built = RbfModelBuilder::new(space.clone(), config).build(&response)?;
    println!(
        "model: {} RBF centers, p_min={}, alpha={}, sample discrepancy {:.4}",
        built.model.network.num_centers(),
        built.model.p_min,
        built.model.alpha,
        built.discrepancy
    );

    // 4. Use the model: predict the CPI of a configuration the
    //    simulator has never seen, then check against simulation.
    let candidate = [0.7, 0.6, 0.5, 0.5, 0.66, 0.8, 0.5, 0.66, 0.9];
    let predicted = built.predict(&candidate);
    let simulated = response.eval(&candidate);
    let config = space.to_config(&candidate);
    println!(
        "\ncandidate: depth={} rob={} iq={} lsq={} L2={}KB/{}cyc il1={}KB dl1={}KB/{}cyc",
        config.pipe_depth,
        config.rob_size,
        config.iq_size(),
        config.lsq_size(),
        config.l2_size_kb,
        config.l2_lat,
        config.il1_size_kb,
        config.dl1_size_kb,
        config.dl1_lat
    );
    println!(
        "predicted CPI {predicted:.3} vs simulated {simulated:.3} ({:.2}% error)",
        100.0 * ((predicted - simulated) / simulated).abs()
    );
    println!("\n(the prediction took microseconds; the simulation took ~10^5 cycles of work)");
    Ok(())
}
