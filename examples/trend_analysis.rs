//! Trend analysis (paper §4.1): use the model to predict how two
//! parameters interact — here, vortex's instruction-cache size versus
//! L2 latency (the paper's Figure 6) — and check the predicted curves
//! against a few detailed simulations.
//!
//! Run with `cargo run --release --example trend_analysis`.

use ppm::model::builder::{BuildConfig, RbfModelBuilder};
use ppm::model::response::{Response, SimulatorResponse};
use ppm::model::space::DesignSpace;
use ppm::model::study::interaction_grid;
use ppm::workload::Benchmark;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let space = DesignSpace::paper_table1();
    let response = SimulatorResponse::new(Benchmark::Vortex, 100_000);

    println!("training the surrogate (90 simulations)...");
    let built = RbfModelBuilder::new(space.clone(), BuildConfig::default().with_sample_size(90))
        .build(&response)?;

    // Model-predicted CPI over the il1 x L2-latency grid, everything
    // else mid-range.
    let base = [0.5; 9];
    let (il1_vals, lat_vals, grid) =
        interaction_grid(&space, |x| built.predict(x), 6, 5, &base, 16);

    println!("\npredicted CPI (rows: il1 size, cols: L2 latency):");
    print!("{:>10}", "il1\\lat");
    for lat in lat_vals.iter().step_by(3) {
        print!("{:>8.0}", lat);
    }
    println!();
    for (i, il1) in il1_vals.iter().enumerate() {
        print!("{:>8.0}KB", il1);
        for j in (0..lat_vals.len()).step_by(3) {
            print!("{:>8.3}", grid[i][j]);
        }
        println!();
    }

    // Verify the extreme rows with real simulation.
    println!("\nchecking the corners against detailed simulation:");
    for (i, j) in [(0, 0), (0, lat_vals.len() - 1), (il1_vals.len() - 1, 0)] {
        let mut x = base;
        x[6] = i as f64 / (il1_vals.len() - 1) as f64;
        x[5] = j as f64 / (lat_vals.len() - 1) as f64;
        let sim = response.eval(&x);
        println!(
            "  il1={:>2.0}KB lat={:>2.0}: predicted {:.3}, simulated {:.3} ({:+.2}%)",
            il1_vals[i],
            lat_vals[j],
            grid[i][j],
            sim,
            100.0 * (grid[i][j] - sim) / sim
        );
    }

    let swing_small = grid[0][0] - grid[0][lat_vals.len() - 1];
    let swing_big = grid[il1_vals.len() - 1][0] - grid[il1_vals.len() - 1][lat_vals.len() - 1];
    println!(
        "\nL2-latency swing: {swing_small:.3} CPI at il1=8KB vs {swing_big:.3} at il1=64KB — \
         the interaction the paper's Figure 1 motivates"
    );
    Ok(())
}
