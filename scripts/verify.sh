#!/usr/bin/env bash
# Full offline verification gate for the ppm workspace.
#
# Runs the tier-1 gate (release build + tests) plus formatting and lint
# checks. Requires no network access: the workspace has no external
# dependencies (crates/bench is excluded and carries its own manifest).
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test -q =="
cargo test -q

echo "== workspace tests =="
cargo test -q --workspace

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "verify: all checks passed"
