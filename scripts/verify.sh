#!/usr/bin/env bash
# Full offline verification gate for the ppm workspace.
#
# Runs the tier-1 gate (release build + tests) plus formatting and lint
# checks. Requires no network access: the workspace has no external
# dependencies (crates/bench is excluded and carries its own manifest).
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test -q =="
cargo test -q

echo "== fault-injection suite =="
cargo test -q --test fault_injection

echo "== determinism suite (serial == parallel) =="
cargo test -q --test determinism

echo "== workspace tests =="
cargo test -q --workspace

echo "== flight recorder: smoke build + regression sentry + trace check =="
# A fixed-seed smoke build must (a) reproduce the committed baseline
# ledger — every deterministic counter and error statistic exactly, and
# stage wall times within a generous cross-machine budget — and
# (b) emit a structurally valid Chrome-trace file. `ppm report` exits 5
# on regression, which fails this gate via `set -e`.
smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"' EXIT
target/release/ppm build --benchmark ammp --sample 20 --instructions 10000 \
  --seed 7 --train-threads 2 --holdout 6 --quiet \
  --out "$smoke_dir/m.txt" --ledger-out "$smoke_dir/ledger.json" \
  --trace-out "$smoke_dir/trace.json"
target/release/ppm report --candidate "$smoke_dir/ledger.json" \
  --against results/baselines/smoke.json --max-stage-ratio 25
target/release/ppm check-trace --file "$smoke_dir/trace.json"

echo "== panic-path grep gate (core, rbf, sampling, exec, obs) =="
# Fail if non-test code in the modeling crates grows a new `.unwrap()` /
# `.expect(` call site: library faults must surface as typed errors, not
# panics. Test modules (everything from `#[cfg(test)]` down) are exempt,
# as is anything matching scripts/unwrap_allowlist.txt.
violations=$(
  for f in crates/core/src/*.rs crates/rbf/src/*.rs \
           crates/sampling/src/*.rs crates/exec/src/*.rs \
           crates/obs/src/*.rs; do
    awk -v file="$f" '/#\[cfg\(test\)\]/{exit} {print file":"FNR": "$0}' "$f"
  done \
    | grep -E '\.unwrap\(\)|\.expect\(' \
    | grep -v -F -f <(grep -vE '^(#|$)' scripts/unwrap_allowlist.txt) \
    || true
)
if [ -n "$violations" ]; then
  echo "new unwrap/expect call sites (use typed errors, or allowlist):"
  echo "$violations"
  exit 1
fi

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "verify: all checks passed"
