#!/usr/bin/env bash
# Full offline verification gate for the ppm workspace.
#
# Runs the tier-1 gate (release build + tests) plus formatting and lint
# checks. Requires no network access: the workspace has no external
# dependencies (crates/bench is excluded and carries its own manifest).
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test -q =="
cargo test -q

echo "== fault-injection suite =="
cargo test -q --test fault_injection

echo "== determinism suite (serial == parallel) =="
cargo test -q --test determinism

echo "== workspace tests =="
cargo test -q --workspace

echo "== flight recorder: smoke build + regression sentry + trace check =="
# A fixed-seed smoke build must (a) reproduce the committed baseline
# ledger — every deterministic counter and error statistic exactly, and
# stage wall times within a generous cross-machine budget — and
# (b) emit a structurally valid Chrome-trace file. `ppm report` exits 5
# on regression, which fails this gate via `set -e`. The build also
# carries `--live 127.0.0.1:0` so the gate proves the live plane binds,
# serves, and shuts down cleanly alongside a real run.
smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"' EXIT
target/release/ppm build --benchmark ammp --sample 20 --instructions 10000 \
  --seed 7 --train-threads 2 --holdout 6 --quiet --live 127.0.0.1:0 \
  --out "$smoke_dir/m.txt" --ledger-out "$smoke_dir/ledger.json" \
  --trace-out "$smoke_dir/trace.json"
target/release/ppm report --candidate "$smoke_dir/ledger.json" \
  --against results/baselines/smoke.json --max-stage-ratio 25
target/release/ppm check-trace --file "$smoke_dir/trace.json"

echo "== bench trajectory: export perf history from the smoke ledger =="
# Each verify run refreshes the `ppm-bench v1` files under results/ so
# perf history accrues PR over PR: the RBF training stage, the
# simulation stage, and the whole smoke build's wall time.
target/release/ppm bench-export --ledger "$smoke_dir/ledger.json" \
  --stage stage.rbf_train --bench rbf_train --out results/BENCH_rbf_train.json
target/release/ppm bench-export --ledger "$smoke_dir/ledger.json" \
  --stage stage.simulation --bench sim --out results/BENCH_sim.json
target/release/ppm bench-export --ledger "$smoke_dir/ledger.json" \
  --stage total --bench build_total --out results/BENCH_build_total.json

echo "== ppm lint (token-aware static analysis, all crates) =="
# The workspace's own linter (crates/lint) supersedes the old awk/grep
# unwrap gate: six rules (panic-path, iteration-order, wall-clock,
# float-eq, print-in-lib, env-read) over every library crate plus src/,
# with string/comment/test-module awareness. Allowlist lives in
# scripts/lint.conf and inline `lint:allow(<rule>)` comments. Exits 6
# on findings, failing this gate via `set -e`; the JSON output is the
# machine-readable record of the run.
target/release/ppm lint --format json

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "verify: all checks passed"
