#!/usr/bin/env bash
# Full offline verification gate for the ppm workspace.
#
# Runs the tier-1 gate (release build + tests) plus formatting and lint
# checks. Requires no network access: the workspace has no external
# dependencies (crates/bench is excluded and carries its own manifest).
set -euo pipefail

cd "$(dirname "$0")/.."

# Per-gate wall-time accounting: gate_done <name> closes the current
# gate and starts the next; the summary line at the bottom is the
# one-glance answer to "what got slow this PR".
gate_summary=""
gate_start=$SECONDS
gate_done() {
  gate_summary="${gate_summary}${gate_summary:+  }$1=$((SECONDS - gate_start))s"
  gate_start=$SECONDS
}

echo "== tier-1: cargo build --release =="
cargo build --release
gate_done build

echo "== tier-1: cargo test -q =="
cargo test -q

echo "== fault-injection suite =="
cargo test -q --test fault_injection

echo "== determinism suite (serial == parallel) =="
cargo test -q --test determinism

echo "== workspace tests =="
cargo test -q --workspace
gate_done test

echo "== flight recorder: smoke build + regression sentry + trace check =="
# A fixed-seed smoke build must (a) reproduce the committed baseline
# ledger — every deterministic counter and error statistic exactly, and
# stage wall times within a generous cross-machine budget — and
# (b) emit a structurally valid Chrome-trace file. `ppm report` exits 5
# on regression, which fails this gate via `set -e`. The build also
# carries `--live 127.0.0.1:0` so the gate proves the live plane binds,
# serves, and shuts down cleanly alongside a real run.
smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"' EXIT
target/release/ppm build --benchmark ammp --sample 20 --instructions 10000 \
  --seed 7 --train-threads 2 --holdout 6 --quiet --live 127.0.0.1:0 \
  --out "$smoke_dir/m.txt" --ledger-out "$smoke_dir/ledger.json" \
  --trace-out "$smoke_dir/trace.json"
target/release/ppm report --candidate "$smoke_dir/ledger.json" \
  --against results/baselines/smoke.json --max-stage-ratio 25
target/release/ppm check-trace --file "$smoke_dir/trace.json"

echo "== bench trajectory: export perf history from the smoke ledger =="
# Each verify run refreshes the `ppm-bench v1` files under results/ so
# perf history accrues PR over PR: the RBF training stage, the
# simulation stage, and the whole smoke build's wall time.
target/release/ppm bench-export --ledger "$smoke_dir/ledger.json" \
  --stage stage.rbf_train --bench rbf_train --out results/BENCH_rbf_train.json
target/release/ppm bench-export --ledger "$smoke_dir/ledger.json" \
  --stage stage.simulation --bench sim --out results/BENCH_sim.json
target/release/ppm bench-export --ledger "$smoke_dir/ledger.json" \
  --stage total --bench build_total --out results/BENCH_build_total.json

echo "== batched simulation: equivalence smoke + perf history =="
# `ppm simulate --batch` runs a 32-point design sample in one batched
# trace pass, then cross-checks every lane against a serial run of the
# same configuration and exits 3 on any divergence — so this one
# invocation is the byte-identity gate. Its ledger carries both wall
# times; exporting them refreshes the batched-vs-serial perf history
# (the speedup is the quotient of the two records).
target/release/ppm simulate --benchmark mcf --batch 32 --seed 7 --quiet \
  --ledger-out "$smoke_dir/batch-ledger.json" > "$smoke_dir/batch.out"
grep -q "identical" "$smoke_dir/batch.out" \
  || { echo "batched simulate reported no cross-check"; exit 1; }
target/release/ppm bench-export --ledger "$smoke_dir/batch-ledger.json" \
  --stage stage.simulate_batch --bench sim_batch --out results/BENCH_sim_batch.json
target/release/ppm bench-export --ledger "$smoke_dir/batch-ledger.json" \
  --stage stage.simulate_serial --bench sim_serial --out results/BENCH_sim_serial.json
gate_done smoke

echo "== serving plane: publish + serve smoke + loadtest SLO gate =="
# Publish the smoke model into a scratch registry and prove the serving
# behaviours end to end against a real `ppm serve` process: one
# full-fidelity prediction, a hot-reload rollback cycle (corrupt CURRENT
# is refused with a 409, the restored pointer reloads with a 200), a
# loadtest whose p99 gates this script (exit 5 on SLO breach) while
# refreshing the serve perf history, and one degraded prediction from a
# second server forced into overload with --degrade-depth 0.
target/release/ppm publish --model "$smoke_dir/m.txt" \
  --registry "$smoke_dir/registry"

# Raw HTTP over bash's /dev/tcp (the container has no curl); the serve
# address comes from the stderr banner of the backgrounded server.
http_request() { # method path addr
  exec 3<>"/dev/tcp/${3%:*}/${3##*:}"
  printf '%s %s HTTP/1.1\r\nHost: ppm\r\nConnection: close\r\n\r\n' "$1" "$2" >&3
  cat <&3
  exec 3<&- 3>&-
}
serve_addr() { # logfile
  local addr=""
  for _ in $(seq 1 100); do
    addr=$(sed -n 's/.*listening on http:\/\/\(.*\)$/\1/p' "$1" | head -n 1)
    [ -n "$addr" ] && break
    sleep 0.1
  done
  echo "$addr"
}

target/release/ppm serve 127.0.0.1:0 --registry "$smoke_dir/registry" \
  2> "$smoke_dir/serve.log" &
serve_pid=$!
addr=$(serve_addr "$smoke_dir/serve.log")
[ -n "$addr" ] || { echo "serve never announced an address"; exit 1; }

http_request GET '/predict?rob=128' "$addr" | grep -q '"degraded":false' \
  || { echo "serve smoke: no full-fidelity prediction"; exit 1; }

version=$(cat "$smoke_dir/registry/CURRENT")
echo bogus > "$smoke_dir/registry/CURRENT"
http_request POST /reloadz "$addr" | grep -q 'HTTP/1.1 409' \
  || { echo "serve smoke: corrupt reload was not refused"; exit 1; }
echo "$version" > "$smoke_dir/registry/CURRENT"
http_request POST /reloadz "$addr" | grep -q 'HTTP/1.1 200' \
  || { echo "serve smoke: restored reload failed"; exit 1; }

target/release/ppm loadtest "$addr" --requests 200 --concurrency 4 \
  --slo-p99-ms 500 --out results/BENCH_serve_latency.json

echo "== request tracing: /tracez schema + SLO budget + chrome export =="
# The loadtest above left tail-sampled trace records behind. /tracez
# must answer the versioned schema with tracing enabled and records
# retained; its Chrome-trace export must validate with the workspace's
# own checker; and /statusz must carry the multi-window SLO block.
http_request GET '/tracez?limit=8' "$addr" > "$smoke_dir/tracez.out"
grep -q '"schema":"ppm-tracez v1"' "$smoke_dir/tracez.out" \
  || { echo "tracez: missing schema line"; exit 1; }
grep -q '"enabled":true' "$smoke_dir/tracez.out" \
  || { echo "tracez: tracing not enabled"; exit 1; }
grep -q '"records":\[{"id":' "$smoke_dir/tracez.out" \
  || { echo "tracez: no retained records after a 200-request loadtest"; exit 1; }
http_request GET '/tracez?format=chrome' "$addr" \
  | sed '1,/^\r$/d' > "$smoke_dir/tracez-chrome.json"
target/release/ppm check-trace --file "$smoke_dir/tracez-chrome.json"
http_request GET /statusz "$addr" > "$smoke_dir/statusz.out"
grep -q '"slo":' "$smoke_dir/statusz.out" \
  || { echo "statusz: no SLO block"; exit 1; }
grep -q '"availability_budget_remaining"' "$smoke_dir/statusz.out" \
  || { echo "statusz: no error-budget accounting"; exit 1; }

echo "== tracing overhead: A/B loadtest (traced vs --no-trace) =="
# Same registry, second server started with --no-trace; the A/B
# loadtest drives both with identical traffic and reports the tracing
# p99 overhead, refreshing the perf-history record. The acceptance
# budget is 2%; p99 deltas on a shared CI box are noisy, so the gate
# takes the best of three runs before failing.
target/release/ppm serve 127.0.0.1:0 --registry "$smoke_dir/registry" \
  --no-trace 2> "$smoke_dir/serve-notrace.log" &
baseline_pid=$!
baseline_addr=$(serve_addr "$smoke_dir/serve-notrace.log")
[ -n "$baseline_addr" ] || { echo "baseline serve never announced an address"; exit 1; }
# Warm the fresh baseline before measuring: a cold process's first
# requests pay one-time costs (page faults, allocator growth) that
# would otherwise be billed to the untraced leg and fake a negative
# overhead. The traced server is already warm from the SLO gate above.
target/release/ppm loadtest "$baseline_addr" --requests 100 --concurrency 4 \
  --no-trace-check > /dev/null
overhead=""
for attempt in 1 2 3; do
  target/release/ppm loadtest "$addr" --requests 300 --concurrency 4 \
    --ab "$baseline_addr" --ab-out results/BENCH_serve_trace.json \
    > "$smoke_dir/ab.out"
  cat "$smoke_dir/ab.out"
  overhead=$(sed -n 's/^tracing p99 overhead \([+-][0-9.]*\)%$/\1/p' "$smoke_dir/ab.out")
  [ -n "$overhead" ] || { echo "A/B loadtest reported no overhead"; exit 1; }
  awk -v o="$overhead" 'BEGIN { exit (o <= 2.0 ? 0 : 1) }' && break
  echo "tracing overhead ${overhead}% > 2% (attempt $attempt); retrying"
  overhead=""
done
[ -n "$overhead" ] || { echo "tracing p99 overhead stayed above 2% after 3 runs"; exit 1; }
http_request POST /quitz "$baseline_addr" > /dev/null
wait "$baseline_pid"

http_request POST /quitz "$addr" > /dev/null
wait "$serve_pid"

# SLO honesty drill: a shed-everything server (--queue 0) refuses every
# request in microseconds. The gate must FAIL (exit 5) because there are
# zero successful samples — not pass on a vacuous p99 of 0 ms.
target/release/ppm serve 127.0.0.1:0 --registry "$smoke_dir/registry" \
  --queue 0 2> "$smoke_dir/serve-shed.log" &
serve_pid=$!
addr=$(serve_addr "$smoke_dir/serve-shed.log")
[ -n "$addr" ] || { echo "shed-all serve never announced an address"; exit 1; }
if target/release/ppm loadtest "$addr" --requests 40 --concurrency 2 \
  --slo-p99-ms 500 --quiet > "$smoke_dir/shed-loadtest.out" 2>&1; then
  echo "SLO gate passed vacuously against a shed-all server"; exit 1
else
  code=$?
  [ "$code" -eq 5 ] || { echo "SLO drill: expected exit 5, got $code"; \
    cat "$smoke_dir/shed-loadtest.out"; exit 1; }
fi
# /quitz is shed like everything else in drill mode; stop it directly.
kill "$serve_pid"
wait "$serve_pid" || true

# Overload drill: --degrade-depth 0 forces every prediction through the
# analytical estimator, flagged as degraded.
target/release/ppm serve 127.0.0.1:0 --registry "$smoke_dir/registry" \
  --degrade-depth 0 2> "$smoke_dir/serve-degraded.log" &
serve_pid=$!
addr=$(serve_addr "$smoke_dir/serve-degraded.log")
[ -n "$addr" ] || { echo "degraded serve never announced an address"; exit 1; }
http_request GET '/predict?rob=128' "$addr" | grep -q '"degraded":true' \
  || { echo "serve smoke: overload drill was not degraded"; exit 1; }
http_request POST /quitz "$addr" > /dev/null
wait "$serve_pid"
gate_done serve

echo "== ppm lint (token-aware static analysis, all crates) =="
# The workspace's own linter (crates/lint) supersedes the old awk/grep
# unwrap gate: six rules (panic-path, iteration-order, wall-clock,
# float-eq, print-in-lib, env-read) over every library crate plus src/,
# with string/comment/test-module awareness. Allowlist lives in
# scripts/lint.conf and inline `lint:allow(<rule>)` comments. Exits 6
# on findings, failing this gate via `set -e`; the JSON output is the
# machine-readable record of the run.
target/release/ppm lint --format json
gate_done lint

echo "== ppm analyze (cross-crate semantic analysis) =="
# The semantic companion to lint (crates/analyze): lock-order cycles
# and I/O-under-lock, atomic-ordering policies, panic reachability from
# worker threads, wire-format registry drift, and the exit-code
# contract. Shares lint's allowlist machinery (scripts/lint.conf,
# inline `analyze:allow(<rule>)`) and its exit-6 contract. The JSON
# report is archived under results/ as the machine-readable record.
target/release/ppm analyze --format json > results/ANALYZE.json \
  || { cat results/ANALYZE.json; exit 6; }
gate_done analyze

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings
gate_done style

echo "verify gate timings: $gate_summary"
echo "verify: all checks passed"
