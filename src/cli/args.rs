//! Minimal flag parsing for the CLI (no external dependency).

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Errors from command-line parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// No command was given.
    MissingCommand,
    /// A flag was given without a value.
    MissingValue(String),
    /// A flag appeared twice.
    Duplicate(String),
    /// A value failed to parse.
    BadValue {
        /// Flag name.
        flag: String,
        /// Offending value.
        value: String,
        /// Expected kind, e.g. "integer".
        expected: &'static str,
    },
    /// A positional argument appeared where a flag was expected.
    Unexpected(String),
    /// A required flag is absent.
    Required(&'static str),
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::MissingCommand => write!(f, "no command given (try `ppm help`)"),
            ArgError::MissingValue(flag) => write!(f, "flag {flag} needs a value"),
            ArgError::Duplicate(flag) => write!(f, "flag {flag} given twice"),
            ArgError::BadValue {
                flag,
                value,
                expected,
            } => write!(f, "flag {flag}: {value:?} is not a valid {expected}"),
            ArgError::Unexpected(arg) => write!(f, "unexpected argument {arg:?}"),
            ArgError::Required(flag) => write!(f, "missing required flag {flag}"),
        }
    }
}

impl Error for ArgError {}

/// A parsed command line: the command word plus `--flag value` pairs
/// and boolean `--flag` switches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Parsed {
    /// The first positional argument.
    pub command: String,
    values: BTreeMap<String, String>,
    switches: Vec<String>,
    positionals: Vec<String>,
}

/// Flags that take no value.
const SWITCHES: [&str; 8] = [
    "--energy",
    "--trace",
    "--quiet",
    "--resume",
    "--no-ledger",
    "--once",
    "--no-trace",
    "--no-trace-check",
];

/// Commands that accept bare positional arguments after the command
/// word (`ppm top 127.0.0.1:9090`, `ppm serve 127.0.0.1:8080`).
/// Everything else treats a stray positional as an error, preserving
/// the strict historical surface.
const POSITIONAL_COMMANDS: [&str; 4] = ["top", "serve", "loadtest", "tail"];

impl Parsed {
    /// Parses raw arguments (excluding the program name).
    ///
    /// # Errors
    ///
    /// See [`ArgError`].
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, ArgError> {
        let mut iter = args.into_iter();
        let command = iter.next().ok_or(ArgError::MissingCommand)?;
        if command.starts_with('-') {
            return Err(ArgError::Unexpected(command));
        }
        let mut values = BTreeMap::new();
        let mut switches = Vec::new();
        let mut positionals = Vec::new();
        while let Some(arg) = iter.next() {
            if !arg.starts_with("--") {
                if POSITIONAL_COMMANDS.contains(&command.as_str()) {
                    positionals.push(arg);
                    continue;
                }
                return Err(ArgError::Unexpected(arg));
            }
            if SWITCHES.contains(&arg.as_str()) {
                switches.push(arg);
                continue;
            }
            let value = iter
                .next()
                .ok_or_else(|| ArgError::MissingValue(arg.clone()))?;
            if values.insert(arg.clone(), value).is_some() {
                return Err(ArgError::Duplicate(arg));
            }
        }
        Ok(Parsed {
            command,
            values,
            switches,
            positionals,
        })
    }

    /// Positional arguments after the command word (only commands in
    /// the positional allowlist ever have any).
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }

    /// A string flag's value, if present.
    pub fn get(&self, flag: &str) -> Option<&str> {
        self.values.get(flag).map(String::as_str)
    }

    /// A required string flag.
    ///
    /// # Errors
    ///
    /// [`ArgError::Required`] when absent.
    pub fn require(&self, flag: &'static str) -> Result<&str, ArgError> {
        self.get(flag).ok_or(ArgError::Required(flag))
    }

    /// A numeric flag with a default.
    ///
    /// # Errors
    ///
    /// [`ArgError::BadValue`] when present but unparseable.
    pub fn num<T: std::str::FromStr>(&self, flag: &str, default: T) -> Result<T, ArgError> {
        match self.get(flag) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::BadValue {
                flag: flag.to_string(),
                value: v.to_string(),
                expected: std::any::type_name::<T>(),
            }),
        }
    }

    /// True if a boolean switch was given.
    pub fn switch(&self, flag: &str) -> bool {
        self.switches.iter().any(|s| s == flag)
    }

    /// Every provided flag as a `(name, value)` pair, sorted by name,
    /// with switches valued `"true"` — the run ledger's `args` block.
    pub fn flag_pairs(&self) -> Vec<(String, String)> {
        let mut pairs: Vec<(String, String)> = self
            .values
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        pairs.extend(
            self.switches
                .iter()
                .map(|s| (s.clone(), "true".to_string())),
        );
        pairs.sort();
        pairs
    }

    /// All flag names that were provided (for validation).
    pub fn provided_flags(&self) -> impl Iterator<Item = &str> {
        self.values
            .keys()
            .map(String::as_str)
            .chain(self.switches.iter().map(String::as_str))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Parsed, ArgError> {
        Parsed::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_command_flags_and_switches() {
        let p = parse(&["simulate", "--benchmark", "mcf", "--rob", "64", "--energy"]).unwrap();
        assert_eq!(p.command, "simulate");
        assert_eq!(p.get("--benchmark"), Some("mcf"));
        assert_eq!(p.num("--rob", 0u32).unwrap(), 64);
        assert!(p.switch("--energy"));
        assert!(!p.switch("--quiet"));
    }

    #[test]
    fn defaults_apply_when_absent() {
        let p = parse(&["simulate"]).unwrap();
        assert_eq!(p.num("--rob", 76u32).unwrap(), 76);
        assert_eq!(p.num("--iq", 0.5f64).unwrap(), 0.5);
    }

    #[test]
    fn error_cases() {
        assert_eq!(parse(&[]), Err(ArgError::MissingCommand));
        assert!(matches!(
            parse(&["build", "--out"]),
            Err(ArgError::MissingValue(_))
        ));
        assert!(matches!(
            parse(&["build", "--rob", "1", "--rob", "2"]),
            Err(ArgError::Duplicate(_))
        ));
        assert!(matches!(
            parse(&["build", "stray"]),
            Err(ArgError::Unexpected(_))
        ));
        let p = parse(&["build", "--rob", "lots"]).unwrap();
        assert!(matches!(
            p.num("--rob", 0u32),
            Err(ArgError::BadValue { .. })
        ));
        assert!(matches!(
            p.require("--out"),
            Err(ArgError::Required("--out"))
        ));
    }

    #[test]
    fn top_accepts_a_positional_address_others_do_not() {
        let p = parse(&["top", "127.0.0.1:9090", "--once"]).unwrap();
        assert_eq!(p.positionals(), ["127.0.0.1:9090".to_string()]);
        assert!(p.switch("--once"));
        // The strict surface is preserved everywhere else.
        assert!(matches!(
            parse(&["build", "127.0.0.1:9090"]),
            Err(ArgError::Unexpected(_))
        ));
        let bare = parse(&["top"]).unwrap();
        assert!(bare.positionals().is_empty());
    }

    #[test]
    fn flag_pairs_are_sorted_and_include_switches() {
        let p = parse(&["build", "--seed", "7", "--no-ledger", "--benchmark", "mcf"]).unwrap();
        assert_eq!(
            p.flag_pairs(),
            vec![
                ("--benchmark".to_string(), "mcf".to_string()),
                ("--no-ledger".to_string(), "true".to_string()),
                ("--seed".to_string(), "7".to_string()),
            ]
        );
        assert!(p.switch("--no-ledger"));
    }

    #[test]
    fn errors_display_helpfully() {
        let e = ArgError::BadValue {
            flag: "--rob".into(),
            value: "x".into(),
            expected: "u32",
        };
        assert!(e.to_string().contains("--rob"));
        assert!(ArgError::MissingCommand.to_string().contains("help"));
    }
}
