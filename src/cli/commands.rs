//! Command implementations for the `ppm` CLI.

use std::error::Error;
use std::fmt;
use std::path::Path;
use std::str::FromStr;

use ppm_core::builder::{BuildConfig, BuildError, RbfModelBuilder};
use ppm_core::checkpoint::{Checkpoint, CheckpointError};
use ppm_core::persist::{self, PersistError};
use ppm_core::response::{Metric, Response, SimulatorResponse};
use ppm_core::space::DesignSpace;
use ppm_core::study::pb_screening;
use ppm_firstorder::{FirstOrderModel, ProgramStats};
use ppm_sim::{estimate_energy, EnergyParams, Processor, SimConfig};
use ppm_workload::{Benchmark, TraceGenerator};

use crate::cli::args::{ArgError, Parsed};
use crate::cli::flight::{self, RunArtifacts};

/// Errors surfaced to the CLI user, categorized so the process exit
/// code tells scripts *what kind* of failure occurred.
#[derive(Debug)]
#[non_exhaustive]
pub enum CliError {
    /// Argument problems (exit code 2).
    Args(ArgError),
    /// Other usage problems — flag or environment values that make the
    /// requested run impossible (exit code 2).
    Usage(String),
    /// Simulation or model-building faults (exit code 3).
    Simulation(BuildError),
    /// Model or checkpoint files that could not be read or written
    /// (exit code 4).
    Persistence(String),
    /// The regression sentry found the candidate worse than the
    /// baseline (exit code 5) — the comparison itself succeeded.
    Regression(String),
    /// The static-analysis pass found violations (exit code 6) — the
    /// scan itself succeeded; the findings were already printed.
    Lint(usize),
    /// The semantic-analysis pass found violations (exit code 6, same
    /// contract as `Lint`: the scan succeeded, findings were printed).
    Analyze(usize),
    /// The live observability plane could not start or be reached
    /// (exit code 7) — e.g. `--live` bind failures, `ppm top` against
    /// a dead endpoint.
    Live(String),
    /// The prediction service could not start or be driven (exit code
    /// 8) — `ppm serve` bind/registry failures, `ppm publish`
    /// validation refusals, `ppm loadtest` against a dead service.
    Serve(String),
    /// Anything else, with a user-facing message (exit code 1).
    Message(String),
}

impl CliError {
    /// The process exit code for this error category: usage errors 2,
    /// simulation faults 3, persistence failures 4, regressions 5,
    /// lint findings 6, live-plane failures 7, serve failures 8,
    /// everything else 1.
    pub fn exit_code(&self) -> u8 {
        match self {
            CliError::Args(_) | CliError::Usage(_) => 2,
            CliError::Simulation(_) => 3,
            CliError::Persistence(_) => 4,
            CliError::Regression(_) => 5,
            CliError::Lint(_) | CliError::Analyze(_) => 6,
            CliError::Live(_) => 7,
            CliError::Serve(_) => 8,
            CliError::Message(_) => 1,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Args(e) => write!(f, "{e}"),
            CliError::Usage(m) => f.write_str(m),
            CliError::Simulation(e) => write!(f, "{e}"),
            CliError::Persistence(m) => f.write_str(m),
            CliError::Regression(m) => f.write_str(m),
            CliError::Lint(n) => write!(f, "ppm-lint: {n} finding(s)"),
            CliError::Analyze(n) => write!(f, "ppm-analyze: {n} finding(s)"),
            CliError::Live(m) => f.write_str(m),
            CliError::Serve(m) => f.write_str(m),
            CliError::Message(m) => f.write_str(m),
        }
    }
}

impl Error for CliError {}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Args(e)
    }
}

impl From<BuildError> for CliError {
    fn from(e: BuildError) -> Self {
        match e {
            // Journal problems are persistence failures, not faults in
            // the simulated pipeline.
            BuildError::Checkpoint(msg) => CliError::Persistence(msg),
            // A sample-selection failure means the caller asked for an
            // impossible sweep (zero candidates / zero threads).
            BuildError::Sample(e) => CliError::Usage(e.to_string()),
            other => CliError::Simulation(other),
        }
    }
}

impl From<PersistError> for CliError {
    fn from(e: PersistError) -> Self {
        CliError::Persistence(e.to_string())
    }
}

impl From<CheckpointError> for CliError {
    fn from(e: CheckpointError) -> Self {
        CliError::Persistence(e.to_string())
    }
}

impl From<ppm_live::LiveError> for CliError {
    fn from(e: ppm_live::LiveError) -> Self {
        CliError::Live(e.to_string())
    }
}

impl From<ppm_serve::ServeError> for CliError {
    fn from(e: ppm_serve::ServeError) -> Self {
        CliError::Serve(e.to_string())
    }
}

fn msg(m: impl fmt::Display) -> CliError {
    CliError::Message(m.to_string())
}

/// Runs a parsed command, writing human-readable output to `out`.
///
/// # Errors
///
/// Returns [`CliError`] with a user-facing message on any failure.
pub fn run(parsed: &Parsed, out: &mut dyn fmt::Write) -> Result<(), CliError> {
    run_with_artifacts(parsed, out, &mut RunArtifacts::default())
}

/// Like [`run`], but also fills `artifacts` with side results (model
/// diagnostics) for the flight recorder's ledger writer.
///
/// # Errors
///
/// Returns [`CliError`] with a user-facing message on any failure.
pub fn run_with_artifacts(
    parsed: &Parsed,
    out: &mut dyn fmt::Write,
    artifacts: &mut RunArtifacts,
) -> Result<(), CliError> {
    match parsed.command.as_str() {
        "help" | "--help" | "-h" => {
            out.write_str(crate::cli::USAGE).map_err(msg)?;
            Ok(())
        }
        "benchmarks" => benchmarks(out),
        "simulate" => simulate(parsed, out),
        "build" => build(parsed, out, artifacts),
        "predict" => predict(parsed, out),
        "screen" => screen(parsed, out),
        "firstorder" => firstorder(parsed, out),
        "workload-info" => workload_info(parsed, out),
        "report" => flight::report(parsed, out),
        "check-trace" => flight::check_trace(parsed, out),
        "bench-export" => flight::bench_export(parsed, out),
        "lint" => lint(parsed, out),
        "analyze" => analyze(parsed, out),
        "top" => top(parsed, out),
        "tail" => tail(parsed, out),
        "serve" => serve(parsed, out),
        "publish" => publish(parsed, out),
        "loadtest" => loadtest(parsed, out),
        other => Err(msg(format!("unknown command {other:?} (try `ppm help`)"))),
    }
}

/// Commands that accept `--live <addr>`: the long-running ones whose
/// progress is worth watching from outside the process.
pub const LIVE_COMMANDS: [&str; 3] = ["build", "simulate", "screen"];

/// Starts the live observability plane when `--live <addr>` was given:
/// binds the endpoint, installs the `/eventz` ring as a telemetry sink,
/// and announces the bound address on stderr (unless `--quiet`).
/// Returns the server handle — the caller keeps it alive for the run;
/// dropping it stops the accept loop.
///
/// # Errors
///
/// [`CliError::Usage`] when `--live` is given on a command outside
/// [`LIVE_COMMANDS`]; [`CliError::Live`] (exit code 7) when the address
/// cannot be bound.
pub fn start_live(parsed: &Parsed) -> Result<Option<ppm_live::LiveServer>, CliError> {
    let Some(addr) = parsed.get("--live") else {
        return Ok(None);
    };
    if !LIVE_COMMANDS.contains(&parsed.command.as_str()) {
        return Err(CliError::Usage(format!(
            "--live is only supported on {} (got {:?})",
            LIVE_COMMANDS.join("/"),
            parsed.command
        )));
    }
    let ring = ppm_telemetry::EventRing::new(256);
    let server = ppm_live::LiveServer::start(addr, ppm_live::RegistrySource::Global, ring.clone())?;
    ppm_telemetry::add_sink(Box::new(ring));
    if !parsed.switch("--quiet") {
        eprintln!("[ppm] live plane listening on http://{}", server.addr());
    }
    Ok(Some(server))
}

/// `ppm top <addr>`: render the live plane at `addr` as a terminal
/// dashboard. `--once` prints a single frame and exits; otherwise the
/// view redraws every `--interval-ms` (default 500) until the endpoint
/// goes away — a vanished endpoint after a successful first poll means
/// the watched run finished, and is a clean exit.
fn top(parsed: &Parsed, out: &mut dyn fmt::Write) -> Result<(), CliError> {
    let addr = match parsed.positionals().first() {
        Some(a) => a.clone(),
        None => {
            return Err(CliError::Usage(
                "usage: ppm top <addr> [--once] [--interval-ms <n>]".to_string(),
            ))
        }
    };
    let interval_ms: u64 = parsed.num("--interval-ms", 500u64)?;
    let quiet = parsed.switch("--quiet");
    let timeout = std::time::Duration::from_secs(2);
    let mut state = ppm_live::TopState::new();
    // The first poll failing means there is no live plane to watch:
    // that is the exit-code-7 case scripts should see.
    let first = ppm_live::fetch_top(&addr, timeout)?;
    if parsed.switch("--once") {
        out.write_str(&state.frame(&addr, &first)).map_err(msg)?;
        return Ok(());
    }
    let mut frame = state.frame(&addr, &first);
    loop {
        // Redraw in place: clear screen, cursor home, one frame.
        print!("\x1b[2J\x1b[H{frame}");
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
        match ppm_live::fetch_top(&addr, timeout) {
            Ok(snap) => frame = state.frame(&addr, &snap),
            Err(e) => {
                if !quiet {
                    eprintln!("[ppm top] {addr} went away ({e}); exiting");
                }
                return Ok(());
            }
        }
    }
}

/// `ppm serve <addr>`: the fault-hardened prediction service (see
/// `crates/serve`). Blocks until `POST /quitz`. Registry/bind failures
/// exit with code 8.
fn serve(parsed: &Parsed, out: &mut dyn fmt::Write) -> Result<(), CliError> {
    let addr = match parsed.positionals().first() {
        Some(a) => a.clone(),
        None => {
            return Err(CliError::Usage(
                "usage: ppm serve <addr> [--registry <dir>] [--benchmark <b>] \
                 [--workers <n>] [--queue <n>] [--deadline-ms <n>] [--degrade-depth <n>] \
                 [--chaos <seed>]"
                    .to_string(),
            ))
        }
    };
    let fallback_benchmark = parsed
        .get("--benchmark")
        .map(|name| Benchmark::from_str(name).map_err(msg))
        .transpose()?;
    let chaos = parsed
        .get("--chaos")
        .map(|v| {
            v.parse::<u64>()
                .map_err(|_| CliError::Usage(format!("--chaos wants an integer seed, got {v:?}")))
        })
        .transpose()?;
    let defaults = ppm_serve::ServeConfig::default();
    let config = ppm_serve::ServeConfig {
        addr,
        workers: parsed.num("--workers", defaults.workers)?,
        queue_per_worker: parsed.num("--queue", defaults.queue_per_worker)?,
        default_deadline: std::time::Duration::from_millis(parsed.num(
            "--deadline-ms",
            u64::try_from(defaults.default_deadline.as_millis()).unwrap_or(250),
        )?),
        max_deadline: std::time::Duration::from_millis(parsed.num(
            "--max-deadline-ms",
            u64::try_from(defaults.max_deadline.as_millis()).unwrap_or(5000),
        )?),
        degrade_depth: parsed.num("--degrade-depth", defaults.degrade_depth)?,
        fail_streak: parsed.num("--fail-streak", defaults.fail_streak)?,
        probe_every: parsed.num("--probe-every", defaults.probe_every)?,
        registry: std::path::PathBuf::from(parsed.get("--registry").unwrap_or("registry")),
        fallback_benchmark,
        chaos,
        trace: !parsed.switch("--no-trace"),
        trace_ring: parsed.num("--trace-ring", defaults.trace_ring)?,
        trace_sample: parsed.num("--trace-sample", defaults.trace_sample)?,
        trace_slow_keep: parsed.num("--trace-slow-keep", defaults.trace_slow_keep)?,
        slo_availability: parsed.num("--slo-availability", defaults.slo_availability)?,
        slo_latency: std::time::Duration::from_millis(parsed.num(
            "--slo-latency-ms",
            u64::try_from(defaults.slo_latency.as_millis()).unwrap_or(100),
        )?),
    };
    let server = ppm_serve::ServeServer::start(config)?;
    if !parsed.switch("--quiet") {
        eprintln!("[ppm serve] listening on http://{}", server.addr());
        if chaos.is_some() {
            eprintln!("[ppm serve] CHAOS MODE: injecting faults and misbehaving clients");
        }
    }
    server.wait();
    writeln!(out, "serve stopped").map_err(msg)?;
    Ok(())
}

/// `ppm publish --model <file> --registry <dir>`: validate a model file
/// and install it in the serving registry under its content hash,
/// pointing `CURRENT` at it.
fn publish(parsed: &Parsed, out: &mut dyn fmt::Write) -> Result<(), CliError> {
    let model = parsed.require("--model")?;
    let registry = parsed.require("--registry")?;
    let version = ppm_serve::publish(Path::new(registry), Path::new(model))?;
    writeln!(out, "published {model} to {registry} as version {version}").map_err(msg)?;
    Ok(())
}

/// `ppm loadtest <addr>`: drive a running service and report latency
/// quantiles; `--slo-p99-ms` turns the p99 into a regression gate
/// (exit code 5), `--out` writes a `ppm-bench v1` perf-history file.
fn loadtest(parsed: &Parsed, out: &mut dyn fmt::Write) -> Result<(), CliError> {
    let addr = match parsed.positionals().first() {
        Some(a) => a.clone(),
        None => {
            return Err(CliError::Usage(
                "usage: ppm loadtest <addr> [--requests <n>] [--concurrency <n>] \
                 [--rate <req/s>] [--deadline-ms <n>] [--slo-p99-ms <ms>] [--out <bench.json>]"
                    .to_string(),
            ))
        }
    };
    let deadline_ms: u64 = parsed.num("--deadline-ms", 0u64)?;
    let defaults = ppm_serve::LoadtestConfig::default();
    let config = ppm_serve::LoadtestConfig {
        addr,
        requests: parsed.num("--requests", 200usize)?,
        concurrency: parsed.num("--concurrency", 4usize)?,
        rate: parsed.num("--rate", 0.0f64)?,
        deadline_ms: (deadline_ms > 0).then_some(deadline_ms),
        timeout: std::time::Duration::from_secs(5),
        trace_check: !parsed.switch("--no-trace-check"),
        trace_prefix: defaults.trace_prefix,
    };
    // A/B overhead mode: the positional address is the traced server,
    // --ab names the identical server started with --no-trace.
    if let Some(baseline_addr) = parsed.get("--ab") {
        let ab = ppm_serve::run_ab(&config, baseline_addr)?;
        writeln!(
            out,
            "traced   p99 {:.3} ms  (ok {}, shed {}, deadline {}, errors {})",
            ab.traced.p99_ms,
            ab.traced.ok,
            ab.traced.shed,
            ab.traced.deadline_exceeded,
            ab.traced.errors
        )
        .map_err(msg)?;
        writeln!(
            out,
            "baseline p99 {:.3} ms  (ok {}, shed {}, deadline {}, errors {})",
            ab.baseline.p99_ms,
            ab.baseline.ok,
            ab.baseline.shed,
            ab.baseline.deadline_exceeded,
            ab.baseline.errors
        )
        .map_err(msg)?;
        writeln!(out, "tracing p99 overhead {:+.2}%", ab.overhead_pct).map_err(msg)?;
        if let Some(check) = &ab.traced.trace_check {
            report_trace_check(out, check)?;
        }
        if let Some(path) = parsed.get("--ab-out") {
            ppm_obs::write_bench(Path::new(path), &ab.bench_record())
                .map_err(|e| CliError::Persistence(format!("cannot write bench {path}: {e}")))?;
            writeln!(out, "overhead bench record written to {path}").map_err(msg)?;
        }
        return Ok(());
    }
    let report = ppm_serve::run_loadtest(&config)?;
    writeln!(out, "sent               {}", report.sent).map_err(msg)?;
    writeln!(
        out,
        "ok                 {} ({} degraded)",
        report.ok, report.degraded
    )
    .map_err(msg)?;
    writeln!(out, "shed               {}", report.shed).map_err(msg)?;
    writeln!(out, "deadline exceeded  {}", report.deadline_exceeded).map_err(msg)?;
    writeln!(out, "errors             {}", report.errors).map_err(msg)?;
    writeln!(
        out,
        "ok latency ms      p50 {:.2}  p95 {:.2}  p99 {:.2}  mean {:.2}",
        report.p50_ms, report.p95_ms, report.p99_ms, report.mean_ms
    )
    .map_err(msg)?;
    if report.shed + report.deadline_exceeded > 0 {
        writeln!(
            out,
            "refusal latency ms p50 {:.2}  p99 {:.2}  mean {:.2}",
            report.refusal_p50_ms, report.refusal_p99_ms, report.refusal_mean_ms
        )
        .map_err(msg)?;
    }
    writeln!(
        out,
        "wall               {:.0} ms ({:.0} req/s)",
        report.wall_ms, report.rps
    )
    .map_err(msg)?;
    if let Some(check) = &report.trace_check {
        report_trace_check(out, check)?;
    }
    if let Some(path) = parsed.get("--out") {
        ppm_obs::write_bench(Path::new(path), &report.bench_record())
            .map_err(|e| CliError::Persistence(format!("cannot write bench {path}: {e}")))?;
        writeln!(out, "bench record written to {path}").map_err(msg)?;
    }
    if let Some(slo) = parsed.get("--slo-p99-ms") {
        let slo: f64 = slo
            .parse()
            .map_err(|_| CliError::Usage(format!("--slo-p99-ms wants a number, got {slo:?}")))?;
        // The SLO is a claim about successful answers. With zero of
        // them there is no p99 to compare — a service shedding
        // everything in microseconds must fail the gate, not pass it
        // with a vacuous 0 ms.
        if report.ok == 0 {
            return Err(CliError::Regression(format!(
                "SLO gate has no evidence: 0 of {} requests succeeded \
                 ({} shed, {} deadline-exceeded, {} errors); refusing to \
                 pass on an unmeasurable p99",
                report.sent, report.shed, report.deadline_exceeded, report.errors
            )));
        }
        if report.p99_ms > slo {
            return Err(CliError::Regression(format!(
                "p99 latency {:.2} ms exceeds the {slo} ms SLO",
                report.p99_ms
            )));
        }
    }
    Ok(())
}

/// Prints the end-to-end accounting cross-check outcome: one line when
/// the books balance, the discrepancy list when they don't.
fn report_trace_check(
    out: &mut dyn fmt::Write,
    check: &ppm_serve::TraceCheckReport,
) -> Result<(), CliError> {
    if check.passed() {
        writeln!(
            out,
            "accounting         balanced (prefix {}, {} traces retained)",
            check.prefix, check.matched_traces
        )
        .map_err(msg)?;
    } else if !check.checked {
        writeln!(
            out,
            "accounting         skipped: {}",
            check.mismatches.join("; ")
        )
        .map_err(msg)?;
    } else {
        for m in &check.mismatches {
            writeln!(out, "accounting MISMATCH {m}").map_err(msg)?;
        }
    }
    Ok(())
}

/// `ppm tail <addr>`: stream the serving plane's retained trace feed
/// as a table. `--once` prints the current ring contents and exits;
/// otherwise polls every `--interval-ms` until interrupted. A failed
/// first poll (no server, tracing disabled) exits with code 8.
fn tail(parsed: &Parsed, out: &mut dyn fmt::Write) -> Result<(), CliError> {
    let addr = match parsed.positionals().first() {
        Some(a) => a.clone(),
        None => {
            return Err(CliError::Usage(
                "usage: ppm tail <addr> [--once] [--interval-ms <n>] [--limit <n>] \
                 [--outcome <o>] [--min-ms <n>]"
                    .to_string(),
            ))
        }
    };
    let min_ms: u64 = parsed.num("--min-ms", 0u64)?;
    let defaults = ppm_serve::TailConfig::default();
    let config = ppm_serve::TailConfig {
        addr,
        interval: std::time::Duration::from_millis(parsed.num("--interval-ms", 1000u64)?),
        once: parsed.switch("--once"),
        limit: parsed.num("--limit", defaults.limit)?,
        outcome: parsed.get("--outcome").map(str::to_string),
        min_ms: (min_ms > 0).then_some(min_ms),
    };
    if config.once {
        let mut lines = String::new();
        ppm_serve::run_tail(&config, &mut |line| {
            lines.push_str(line);
            lines.push('\n');
        })?;
        out.write_str(&lines).map_err(msg)?;
        return Ok(());
    }
    // Streaming mode writes straight to stdout as records arrive —
    // buffering through `out` would hold lines until the (never) end.
    ppm_serve::run_tail(&config, &mut |line| println!("{line}"))?;
    Ok(())
}

fn benchmark_arg(parsed: &Parsed) -> Result<Benchmark, CliError> {
    let name = parsed.require("--benchmark")?;
    Benchmark::from_str(name).map_err(msg)
}

/// Builds a simulator configuration from the config flags.
fn config_from(parsed: &Parsed) -> Result<SimConfig, CliError> {
    let default = SimConfig::default();
    SimConfig::builder()
        .pipe_depth(parsed.num("--depth", default.pipe_depth)?)
        .rob_size(parsed.num("--rob", default.rob_size)?)
        .iq_frac(parsed.num("--iq", default.iq_frac)?)
        .lsq_frac(parsed.num("--lsq", default.lsq_frac)?)
        .l2_size_kb(parsed.num("--l2-kb", default.l2_size_kb)?)
        .l2_lat(parsed.num("--l2-lat", default.l2_lat)?)
        .il1_size_kb(parsed.num("--il1-kb", default.il1_size_kb)?)
        .dl1_size_kb(parsed.num("--dl1-kb", default.dl1_size_kb)?)
        .dl1_lat(parsed.num("--dl1-lat", default.dl1_lat)?)
        .build()
        .map_err(msg)
}

/// Converts config flags to a unit design point in the Table 1 space.
fn unit_from(parsed: &Parsed, space: &DesignSpace) -> Result<Vec<f64>, CliError> {
    let config = config_from(parsed)?;
    let actual = vec![
        config.pipe_depth as f64,
        config.rob_size as f64,
        config.iq_frac,
        config.lsq_frac,
        config.l2_size_kb as f64,
        config.l2_lat as f64,
        config.il1_size_kb as f64,
        config.dl1_size_kb as f64,
        config.dl1_lat as f64,
    ];
    Ok(space.params().to_unit(&actual))
}

fn benchmarks(out: &mut dyn fmt::Write) -> Result<(), CliError> {
    writeln!(
        out,
        "{:<14} {:>9} {:>8} {:>8}",
        "benchmark", "code_KB", "loads%", "branch%"
    )
    .map_err(msg)?;
    for b in Benchmark::all() {
        let p = b.profile();
        writeln!(
            out,
            "{:<14} {:>9} {:>8.0} {:>8.1}",
            b.to_string(),
            p.code_footprint() / 1024,
            100.0 * p.mix.load,
            100.0 * p.branch_fraction()
        )
        .map_err(msg)?;
    }
    Ok(())
}

fn simulate(parsed: &Parsed, out: &mut dyn fmt::Write) -> Result<(), CliError> {
    if parsed.get("--batch").is_some() {
        return simulate_batch(parsed, out);
    }
    let bench = benchmark_arg(parsed)?;
    let config = config_from(parsed)?;
    let instructions: usize = parsed.num("--instructions", 100_000)?;
    let seed: u64 = parsed.num("--seed", 1u64)?;
    let stats = {
        let _span = ppm_telemetry::span("stage.simulate");
        let trace = TraceGenerator::new(bench, seed).take(instructions);
        Processor::new(config.clone()).run(trace)
    };
    writeln!(out, "benchmark      {bench}").map_err(msg)?;
    writeln!(out, "instructions   {}", stats.instructions).map_err(msg)?;
    writeln!(out, "cycles         {}", stats.cycles).map_err(msg)?;
    writeln!(out, "CPI            {:.4}", stats.cpi()).map_err(msg)?;
    writeln!(out, "IPC            {:.4}", stats.ipc()).map_err(msg)?;
    writeln!(out, "il1 miss rate  {:.4}", stats.il1.miss_rate()).map_err(msg)?;
    writeln!(out, "dl1 miss rate  {:.4}", stats.dl1.miss_rate()).map_err(msg)?;
    writeln!(out, "l2 miss rate   {:.4}", stats.l2.miss_rate()).map_err(msg)?;
    writeln!(out, "mispredicts    {:.4}", stats.mispredict_rate()).map_err(msg)?;
    writeln!(out, "dram accesses  {}", stats.dram_accesses).map_err(msg)?;
    if parsed.switch("--energy") {
        let e = estimate_energy(&stats, &config, &EnergyParams::default());
        writeln!(out, "energy total   {:.1}", e.total()).map_err(msg)?;
        writeln!(out, "EPI            {:.4}", e.epi()).map_err(msg)?;
        writeln!(out, "EDP            {:.4}", e.edp()).map_err(msg)?;
    }
    Ok(())
}

/// `ppm simulate --batch <n>`: simulate an n-point Latin-hypercube
/// sample of the Table 1 design space in one batched trace pass, then
/// cross-check every lane against a serial run of the same
/// configuration. A statistics mismatch is a simulation fault (exit
/// code 3) — the batched engine's contract is byte-identical results,
/// not approximately-equal ones. Both wall times land in the run ledger
/// (`stage.simulate_batch` / `stage.simulate_serial`) so the speedup is
/// diffable by the regression sentry.
fn simulate_batch(parsed: &Parsed, out: &mut dyn fmt::Write) -> Result<(), CliError> {
    let bench = benchmark_arg(parsed)?;
    let lanes: usize = parsed.num("--batch", 0usize)?;
    if lanes == 0 {
        return Err(CliError::Usage(
            "--batch wants at least one configuration".to_string(),
        ));
    }
    let instructions: usize = parsed.num("--instructions", 100_000)?;
    let seed: u64 = parsed.num("--seed", 1u64)?;
    let space = DesignSpace::paper_table1();
    let mut rng = ppm_rng::Rng::seed_from_u64(seed);
    let design = ppm_sampling::lhs::LatinHypercube::new(space.params(), lanes).generate(&mut rng);
    let configs: Vec<SimConfig> = design.iter().map(|u| space.to_config(u)).collect();
    let batch = ppm_sim::BatchProcessor::new(configs.clone())
        .map_err(|e| CliError::Simulation(BuildError::InvalidConfig(e.to_string())))?;

    let wall = std::time::Instant::now();
    let batched = {
        let _span = ppm_telemetry::span("stage.simulate_batch");
        batch.run(TraceGenerator::new(bench, seed).take(instructions))
    };
    let batch_ms = wall.elapsed().as_secs_f64() * 1000.0;

    let wall = std::time::Instant::now();
    let serial: Vec<_> = {
        let _span = ppm_telemetry::span("stage.simulate_serial");
        configs
            .iter()
            .map(|c| {
                Processor::new(c.clone()).run(TraceGenerator::new(bench, seed).take(instructions))
            })
            .collect()
    };
    let serial_ms = wall.elapsed().as_secs_f64() * 1000.0;

    for (lane, (b, s)) in batched.iter().zip(&serial).enumerate() {
        if b != s {
            return Err(CliError::Simulation(BuildError::InvalidConfig(format!(
                "batched lane {lane} diverged from its serial run \
                 (batched CPI {:.6}, serial CPI {:.6}): the shared-trace \
                 invariant is broken",
                b.cpi(),
                s.cpi()
            ))));
        }
    }

    writeln!(out, "benchmark      {bench}").map_err(msg)?;
    writeln!(out, "lanes          {lanes}").map_err(msg)?;
    writeln!(out, "instructions   {instructions}").map_err(msg)?;
    writeln!(
        out,
        "{:<5} {:>6} {:>5} {:>7} {:>8} {:>8} {:>9}",
        "lane", "depth", "rob", "dl1_kb", "CPI", "IPC", "identical"
    )
    .map_err(msg)?;
    for (lane, (config, stats)) in configs.iter().zip(&batched).enumerate() {
        writeln!(
            out,
            "{lane:<5} {:>6} {:>5} {:>7} {:>8.4} {:>8.4} {:>9}",
            config.pipe_depth,
            config.rob_size,
            config.dl1_size_kb,
            stats.cpi(),
            stats.ipc(),
            "yes"
        )
        .map_err(msg)?;
    }
    writeln!(
        out,
        "wall           batch {batch_ms:.0} ms, serial {serial_ms:.0} ms ({:.2}x)",
        serial_ms / batch_ms
    )
    .map_err(msg)?;
    Ok(())
}

fn metric_arg(parsed: &Parsed) -> Result<(Metric, &'static str), CliError> {
    match parsed.get("--metric").unwrap_or("cpi") {
        "cpi" => Ok((Metric::Cpi, "cpi")),
        "epi" => Ok((Metric::Epi, "epi")),
        "edp" => Ok((Metric::Edp, "edp")),
        other => Err(msg(format!("unknown metric {other:?} (cpi|epi|edp)"))),
    }
}

/// The training-side worker-thread count: `--train-threads` when given,
/// else a valid `PPM_THREADS`, else the machine default. Bad values in
/// either place are usage errors (exit code 2), not guesses.
fn train_threads_arg(parsed: &Parsed) -> Result<usize, CliError> {
    if let Err(e) = ppm_exec::threads_from_env() {
        return Err(CliError::Usage(e.to_string()));
    }
    let threads: usize = parsed.num("--train-threads", ppm_exec::default_threads())?;
    if threads == 0 {
        return Err(CliError::Usage(
            "--train-threads must be at least 1".to_string(),
        ));
    }
    Ok(threads.min(ppm_exec::MAX_THREADS))
}

fn build(
    parsed: &Parsed,
    out: &mut dyn fmt::Write,
    artifacts: &mut RunArtifacts,
) -> Result<(), CliError> {
    let bench = benchmark_arg(parsed)?;
    let out_path = parsed.require("--out")?.to_string();
    let sample: usize = parsed.num("--sample", 90)?;
    let instructions: usize = parsed.num("--instructions", 100_000)?;
    let seed: u64 = parsed.num("--seed", 1u64)?;
    let holdout: usize = parsed.num("--holdout", 12)?;
    let train_threads = train_threads_arg(parsed)?;
    let lhs_candidates: usize = parsed.num("--lhs-candidates", 200)?;
    let (metric, metric_name) = metric_arg(parsed)?;

    let space = DesignSpace::paper_table1();
    let response = SimulatorResponse::new(bench, instructions)
        .with_seed(seed)
        .with_metric(metric);
    ppm_telemetry::event(
        "build.start",
        &[
            ("benchmark", bench.to_string().into()),
            ("points", sample.into()),
            ("instructions", instructions.into()),
            ("metric", metric_name.into()),
        ],
    );
    let config = BuildConfig::default()
        .with_sample_size(sample)
        .with_seed(seed)
        .with_train_threads(train_threads)
        .with_lhs_candidates(lhs_candidates);
    let builder = RbfModelBuilder::new(space, config);
    // The run parameters the checkpoint must agree on: resuming with a
    // different workload or sample would silently mix results.
    let run_meta = vec![
        ("benchmark".to_string(), bench.to_string()),
        ("metric".to_string(), metric_name.to_string()),
        ("sample".to_string(), sample.to_string()),
        ("instructions".to_string(), instructions.to_string()),
        ("seed".to_string(), seed.to_string()),
    ];
    let built = if let Some(cp_path) = parsed.get("--checkpoint") {
        let mut cp = if parsed.switch("--resume") && Path::new(cp_path).exists() {
            let cp = Checkpoint::load(cp_path)?;
            cp.verify_meta(&run_meta)?;
            cp
        } else {
            Checkpoint::create(cp_path, &run_meta)
        };
        builder.build_checkpointed(&response, &mut cp)?
    } else {
        if parsed.switch("--resume") {
            return Err(msg("--resume requires --checkpoint <path>"));
        }
        builder.build(&response)?
    };
    if !built.quarantined.is_empty() {
        writeln!(
            out,
            "warning: {} of {} design points quarantined; model trained on survivors",
            built.quarantined.len(),
            built.quarantined.len() + built.design.len()
        )
        .map_err(msg)?;
    }
    // Held-out accuracy on the paper's §3 test region: simulate
    // `--holdout` fresh points the training sample never saw and score
    // the model against them. Deterministic for a fixed seed, so the
    // statistics land in the ledger's hashed body.
    let holdout_stats = if holdout > 0 {
        let _span = ppm_telemetry::span("stage.holdout");
        let test = builder.test_points(&DesignSpace::paper_table2(), holdout);
        let actual: Vec<f64> = test.iter().map(|p| response.eval(p)).collect();
        Some(built.evaluate(&test, &actual))
    } else {
        None
    };
    artifacts.diagnostics = built
        .diagnostics(holdout_stats)
        .ok()
        .as_ref()
        .map(flight::diagnostics_json);
    let mut meta = run_meta;
    meta.push(("p_min".to_string(), built.model.p_min.to_string()));
    meta.push(("alpha".to_string(), built.model.alpha.to_string()));
    persist::save(&built.model.network, &meta, Path::new(&out_path))?;
    writeln!(
        out,
        "model with {} centers (p_min={}, alpha={}) written to {}",
        built.model.network.num_centers(),
        built.model.p_min,
        built.model.alpha,
        out_path
    )
    .map_err(msg)?;
    if let Some(stats) = &holdout_stats {
        writeln!(
            out,
            "held-out CPI error over {holdout} points: mean {:.2}% max {:.2}% std {:.2}%",
            stats.mean_pct, stats.max_pct, stats.std_pct
        )
        .map_err(msg)?;
    }
    Ok(())
}

fn predict(parsed: &Parsed, out: &mut dyn fmt::Write) -> Result<(), CliError> {
    let model_path = parsed.require("--model")?;
    let saved = persist::load(Path::new(model_path))?;
    let space = DesignSpace::paper_table1();
    let unit = unit_from(parsed, &space)?;
    let value = saved.network.predict(&unit);
    let metric = saved.meta_value("metric").unwrap_or("cpi");
    if let Some(bench) = saved.meta_value("benchmark") {
        writeln!(out, "benchmark  {bench}").map_err(msg)?;
    }
    writeln!(out, "predicted {metric}  {value:.4}").map_err(msg)?;
    Ok(())
}

fn screen(parsed: &Parsed, out: &mut dyn fmt::Write) -> Result<(), CliError> {
    let bench = benchmark_arg(parsed)?;
    let instructions: usize = parsed.num("--instructions", 100_000)?;
    let space = DesignSpace::paper_table1();
    let response = SimulatorResponse::new(bench, instructions);
    ppm_telemetry::event(
        "screen.start",
        &[
            ("benchmark", bench.to_string().into()),
            ("simulations", 24u64.into()),
        ],
    );
    let effects = pb_screening(&space, &response, 12, 1)?;
    writeln!(out, "{:<12} {:>12}", "parameter", "effect (CPI)").map_err(msg)?;
    for e in effects {
        writeln!(out, "{:<12} {:>12.4}", e.param, e.effect).map_err(msg)?;
    }
    Ok(())
}

fn workload_info(parsed: &Parsed, out: &mut dyn fmt::Write) -> Result<(), CliError> {
    let bench = benchmark_arg(parsed)?;
    let instructions: usize = parsed.num("--instructions", 100_000)?;
    let seed: u64 = parsed.num("--seed", 1u64)?;
    let stats = {
        let _span = ppm_telemetry::span("stage.workload_stats");
        ProgramStats::collect(
            TraceGenerator::new(bench, seed).take(instructions),
            &SimConfig::default(),
        )
    };
    writeln!(out, "benchmark           {bench}").map_err(msg)?;
    writeln!(out, "instructions        {}", stats.instructions).map_err(msg)?;
    writeln!(out, "load fraction       {:.3}", stats.load_frac).map_err(msg)?;
    writeln!(out, "branch fraction     {:.3}", stats.branch_frac).map_err(msg)?;
    writeln!(out, "mispredict rate     {:.4}", stats.mispredict_rate).map_err(msg)?;
    writeln!(out, "chained load frac   {:.3}", stats.chained_load_frac).map_err(msg)?;
    writeln!(
        out,
        "dataflow ILP        {}",
        stats
            .ilp_curve
            .iter()
            .map(|(w, i)| format!("{w}:{i:.2}"))
            .collect::<Vec<_>>()
            .join(" ")
    )
    .map_err(msg)?;
    let fmt_mpi = |table: &std::collections::BTreeMap<u32, f64>| {
        table
            .iter()
            .map(|(k, v)| format!("{k}K:{v:.4}"))
            .collect::<Vec<_>>()
            .join(" ")
    };
    writeln!(out, "il1 misses/instr    {}", fmt_mpi(&stats.il1_mpi)).map_err(msg)?;
    writeln!(out, "dl1 misses/instr    {}", fmt_mpi(&stats.dl1_mpi)).map_err(msg)?;
    writeln!(out, "l2 misses/instr     {}", fmt_mpi(&stats.l2_mpi)).map_err(msg)?;
    Ok(())
}

fn firstorder(parsed: &Parsed, out: &mut dyn fmt::Write) -> Result<(), CliError> {
    let bench = benchmark_arg(parsed)?;
    let instructions: usize = parsed.num("--instructions", 100_000)?;
    let seed: u64 = parsed.num("--seed", 1u64)?;
    let config = config_from(parsed)?;
    let stats = {
        let _span = ppm_telemetry::span("stage.workload_stats");
        ProgramStats::collect(
            TraceGenerator::new(bench, seed).take(instructions),
            &SimConfig::default(),
        )
    };
    let model = FirstOrderModel::new(stats);
    let predicted = model.predict(&config);
    writeln!(out, "benchmark            {bench}").map_err(msg)?;
    writeln!(out, "first-order CPI      {predicted:.4}").map_err(msg)?;
    writeln!(
        out,
        "(one trace pass; compare with `ppm simulate` for the detailed number)"
    )
    .map_err(msg)?;
    Ok(())
}

/// `ppm lint`: the workspace static-analysis pass (see `crates/lint`).
///
/// Flags: `--root <dir>` (default `.`), `--conf <file>` (default
/// `<root>/scripts/lint.conf` when present), `--format human|json`.
/// Findings are printed to stdout and exit with code 6, so scripts can
/// tell "violations found" from a broken scan.
fn lint(parsed: &Parsed, out: &mut dyn fmt::Write) -> Result<(), CliError> {
    let format = parsed.get("--format").unwrap_or("human");
    if !matches!(format, "human" | "json") {
        return Err(CliError::Usage(format!(
            "unknown lint format {format:?} (human|json)"
        )));
    }
    let root = Path::new(parsed.get("--root").unwrap_or("."));
    let persist = |e: &dyn fmt::Display| CliError::Persistence(e.to_string());
    let conf = match parsed.get("--conf") {
        Some(path) => ppm_lint::Config::load(Path::new(path)).map_err(|e| persist(&e))?,
        None => {
            let default = root.join("scripts").join("lint.conf");
            if default.is_file() {
                ppm_lint::Config::load(&default).map_err(|e| persist(&e))?
            } else {
                ppm_lint::Config::empty()
            }
        }
    };
    let report = {
        let _span = ppm_telemetry::span("stage.lint");
        ppm_lint::lint_workspace(root, &conf).map_err(|e| persist(&e))?
    };
    match format {
        "json" => writeln!(out, "{}", report.render_json()).map_err(msg)?,
        _ => out.write_str(&report.render_human()).map_err(msg)?,
    }
    if report.is_clean() {
        Ok(())
    } else {
        Err(CliError::Lint(report.diagnostics.len()))
    }
}

/// `ppm analyze`: the cross-crate semantic-analysis pass (see
/// `crates/analyze`): lock-order, atomic-ordering, panic-reachability,
/// wire-format and exit-code contracts.
///
/// Flags: `--root <dir>` (default `.`), `--conf <file>` (default
/// `<root>/scripts/lint.conf` when present — the allowlist is shared
/// with `ppm lint`), `--format human|json`, `--rule <name>` to scope
/// the run to one analysis. Findings exit with code 6, like lint.
fn analyze(parsed: &Parsed, out: &mut dyn fmt::Write) -> Result<(), CliError> {
    let format = parsed.get("--format").unwrap_or("human");
    if !matches!(format, "human" | "json") {
        return Err(CliError::Usage(format!(
            "unknown analyze format {format:?} (human|json)"
        )));
    }
    let rule_filter = parsed.get("--rule");
    if let Some(rule) = rule_filter {
        if !ppm_lint::rules::ANALYZE_RULE_NAMES.contains(&rule) {
            return Err(CliError::Usage(format!(
                "unknown analyze rule {rule:?} (known: {})",
                ppm_lint::rules::ANALYZE_RULE_NAMES.join(", ")
            )));
        }
    }
    let root = Path::new(parsed.get("--root").unwrap_or("."));
    let persist = |e: &dyn fmt::Display| CliError::Persistence(e.to_string());
    let conf = match parsed.get("--conf") {
        Some(path) => ppm_lint::Config::load(Path::new(path)).map_err(|e| persist(&e))?,
        None => {
            let default = root.join("scripts").join("lint.conf");
            if default.is_file() {
                ppm_lint::Config::load(&default).map_err(|e| persist(&e))?
            } else {
                ppm_lint::Config::empty()
            }
        }
    };
    let mut report = {
        let _span = ppm_telemetry::span("stage.analyze");
        ppm_analyze::analyze_workspace(root, &conf).map_err(|e| persist(&e))?
    };
    if let Some(rule) = rule_filter {
        report.diagnostics.retain(|d| d.rule == rule);
    }
    match format {
        "json" => writeln!(out, "{}", report.render_json()).map_err(msg)?,
        _ => out.write_str(&report.render_human()).map_err(msg)?,
    }
    if report.is_clean() {
        Ok(())
    } else {
        Err(CliError::Analyze(report.diagnostics.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_cli(args: &[&str]) -> Result<String, CliError> {
        let parsed = Parsed::parse(args.iter().map(|s| s.to_string()))?;
        let mut out = String::new();
        run(&parsed, &mut out)?;
        Ok(out)
    }

    #[test]
    fn help_prints_usage() {
        let out = run_cli(&["help"]).unwrap();
        assert!(out.contains("USAGE"));
        assert!(out.contains("simulate"));
    }

    #[test]
    fn benchmarks_lists_all_eight() {
        let out = run_cli(&["benchmarks"]).unwrap();
        for b in Benchmark::all() {
            assert!(out.contains(b.name()), "missing {b}");
        }
    }

    #[test]
    fn simulate_reports_cpi() {
        let out = run_cli(&[
            "simulate",
            "--benchmark",
            "crafty",
            "--instructions",
            "20000",
            "--energy",
        ])
        .unwrap();
        assert!(out.contains("CPI"));
        assert!(out.contains("EPI"));
    }

    #[test]
    fn simulate_respects_config_flags() {
        let slow = run_cli(&[
            "simulate",
            "--benchmark",
            "mcf",
            "--instructions",
            "20000",
            "--l2-lat",
            "20",
        ])
        .unwrap();
        let fast = run_cli(&[
            "simulate",
            "--benchmark",
            "mcf",
            "--instructions",
            "20000",
            "--l2-lat",
            "5",
        ])
        .unwrap();
        let cpi = |s: &str| -> f64 {
            s.lines()
                .find(|l| l.starts_with("CPI"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
                .expect("CPI line")
        };
        assert!(cpi(&slow) > cpi(&fast));
    }

    #[test]
    fn build_then_predict_round_trip() {
        let dir = std::env::temp_dir().join("ppm_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let model_path = dir.join("m.txt");
        let path = model_path.to_str().unwrap();
        let out = run_cli(&[
            "build",
            "--benchmark",
            "ammp",
            "--out",
            path,
            "--sample",
            "25",
            "--instructions",
            "15000",
        ])
        .unwrap();
        assert!(out.contains("centers"));
        let out = run_cli(&["predict", "--model", path, "--rob", "100"]).unwrap();
        assert!(out.contains("predicted cpi"));
        std::fs::remove_file(&model_path).ok();
    }

    #[test]
    fn workload_info_reports_characteristics() {
        let out = run_cli(&[
            "workload-info",
            "--benchmark",
            "mcf",
            "--instructions",
            "20000",
        ])
        .unwrap();
        assert!(out.contains("chained load frac"));
        assert!(out.contains("dataflow ILP"));
    }

    #[test]
    fn firstorder_runs() {
        let out = run_cli(&[
            "firstorder",
            "--benchmark",
            "twolf",
            "--instructions",
            "20000",
        ])
        .unwrap();
        assert!(out.contains("first-order CPI"));
    }

    #[test]
    fn unknown_command_and_benchmark_error() {
        assert!(run_cli(&["frobnicate"]).is_err());
        let err = run_cli(&["simulate", "--benchmark", "gcc"]).unwrap_err();
        assert!(err.to_string().contains("gcc"));
    }

    #[test]
    fn invalid_config_is_reported() {
        let err = run_cli(&["simulate", "--benchmark", "mcf", "--depth", "3"]).unwrap_err();
        assert!(err.to_string().contains("pipe_depth"));
    }

    #[test]
    fn build_with_checkpoint_then_resume() {
        let dir = std::env::temp_dir().join("ppm_cli_checkpoint_test");
        std::fs::create_dir_all(&dir).unwrap();
        let model_path = dir.join("m.txt");
        let cp_path = dir.join("j.txt");
        let model = model_path.to_str().unwrap();
        let cp = cp_path.to_str().unwrap();
        let base = [
            "build",
            "--benchmark",
            "ammp",
            "--out",
            model,
            "--sample",
            "20",
            "--instructions",
            "10000",
            "--checkpoint",
            cp,
        ];
        run_cli(&base).unwrap();
        let first = std::fs::read_to_string(&model_path).unwrap();
        assert!(cp_path.exists(), "checkpoint journal not written");

        // Resuming reuses the journal and reproduces the model exactly.
        let mut resumed = base.to_vec();
        resumed.push("--resume");
        run_cli(&resumed).unwrap();
        let second = std::fs::read_to_string(&model_path).unwrap();
        assert_eq!(first, second, "resumed model differs");

        // Resuming under different run parameters is a persistence
        // error (exit code 4), not a silent mix of results.
        let mut mismatched = resumed.clone();
        mismatched[2] = "mcf";
        let err = run_cli(&mismatched).unwrap_err();
        assert_eq!(err.exit_code(), 4, "{err}");
        assert!(err.to_string().contains("different run"), "{err}");

        std::fs::remove_file(&model_path).ok();
        std::fs::remove_file(&cp_path).ok();
    }

    #[test]
    fn resume_without_checkpoint_is_an_error() {
        let err = run_cli(&[
            "build",
            "--benchmark",
            "mcf",
            "--out",
            "/dev/null",
            "--resume",
        ])
        .unwrap_err();
        assert!(err.to_string().contains("--checkpoint"), "{err}");
        assert_eq!(err.exit_code(), 1);
    }

    #[test]
    fn zero_train_threads_is_a_usage_error() {
        let err = run_cli(&[
            "build",
            "--benchmark",
            "mcf",
            "--out",
            "/dev/null",
            "--train-threads",
            "0",
        ])
        .unwrap_err();
        assert_eq!(err.exit_code(), 2, "{err}");
        assert!(err.to_string().contains("--train-threads"), "{err}");
    }

    #[test]
    fn zero_lhs_candidates_is_a_usage_error() {
        let err = run_cli(&[
            "build",
            "--benchmark",
            "mcf",
            "--out",
            "/dev/null",
            "--sample",
            "10",
            "--instructions",
            "5000",
            "--lhs-candidates",
            "0",
        ])
        .unwrap_err();
        assert_eq!(err.exit_code(), 2, "{err}");
        assert!(err.to_string().contains("candidate"), "{err}");
    }

    #[test]
    fn build_accepts_explicit_training_flags() {
        let dir = std::env::temp_dir().join("ppm_cli_threads_test");
        std::fs::create_dir_all(&dir).unwrap();
        let model_path = dir.join("m.txt");
        let out = run_cli(&[
            "build",
            "--benchmark",
            "mcf",
            "--out",
            model_path.to_str().unwrap(),
            "--sample",
            "20",
            "--instructions",
            "10000",
            "--train-threads",
            "2",
            "--lhs-candidates",
            "16",
        ])
        .unwrap();
        assert!(out.contains("centers"));
        std::fs::remove_file(&model_path).ok();
    }

    #[test]
    fn exit_codes_follow_error_category() {
        assert_eq!(CliError::Args(ArgError::MissingCommand).exit_code(), 2);
        assert_eq!(CliError::Usage("x".into()).exit_code(), 2);
        let e: CliError = BuildError::Sample(ppm_sampling::SampleError::NoCandidates).into();
        assert_eq!(e.exit_code(), 2);
        assert_eq!(
            CliError::Simulation(BuildError::InvalidConfig("x".into())).exit_code(),
            3
        );
        assert_eq!(CliError::Persistence("x".into()).exit_code(), 4);
        assert_eq!(CliError::Live("x".into()).exit_code(), 7);
        let e: CliError = ppm_live::LiveError::Bind {
            addr: "127.0.0.1:1".into(),
            detail: "in use".into(),
        }
        .into();
        assert_eq!(e.exit_code(), 7);
        assert_eq!(CliError::Serve("x".into()).exit_code(), 8);
        let e: CliError = ppm_serve::ServeError::Store("no CURRENT".into()).into();
        assert_eq!(e.exit_code(), 8);
        assert_eq!(CliError::Message("x".into()).exit_code(), 1);
        // The From impls route checkpoint trouble to the persistence
        // category and everything else simulation-ward.
        let e: CliError = BuildError::Checkpoint("bad".into()).into();
        assert_eq!(e.exit_code(), 4);
        let e: CliError = BuildError::ExcessiveFaults {
            quarantined: 3,
            total: 10,
            detail: "x".into(),
        }
        .into();
        assert_eq!(e.exit_code(), 3);
    }

    #[test]
    fn top_requires_an_address_and_dead_endpoints_exit_7() {
        let err = run_cli(&["top"]).unwrap_err();
        assert_eq!(err.exit_code(), 2, "{err}");
        assert!(err.to_string().contains("ppm top <addr>"), "{err}");
        // A port nothing listens on: first poll fails, exit code 7.
        let port = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let err = run_cli(&["top", &format!("127.0.0.1:{port}"), "--once"]).unwrap_err();
        assert_eq!(err.exit_code(), 7, "{err}");
    }

    #[test]
    fn top_once_renders_a_frame_against_a_live_server() {
        let server = ppm_live::LiveServer::start(
            "127.0.0.1:0",
            ppm_live::RegistrySource::Global,
            ppm_telemetry::EventRing::new(8),
        )
        .unwrap();
        let out = run_cli(&["top", &server.addr().to_string(), "--once"]).unwrap();
        assert!(out.contains("ppm top —"), "{out}");
        assert!(out.contains("points ["), "{out}");
    }

    #[test]
    fn live_flag_is_gated_to_long_running_commands() {
        let parsed = Parsed::parse(
            ["predict", "--live", "127.0.0.1:0"]
                .iter()
                .map(|s| s.to_string()),
        )
        .unwrap();
        let err = start_live(&parsed).unwrap_err();
        assert_eq!(err.exit_code(), 2, "{err}");
        // Without the flag nothing starts, whatever the command.
        let parsed = Parsed::parse(["predict"].iter().map(|s| s.to_string())).unwrap();
        assert!(start_live(&parsed).unwrap().is_none());
        // An unbindable address is a live-plane error (exit code 7).
        let parsed = Parsed::parse(
            ["build", "--live", "not-an-address", "--quiet"]
                .iter()
                .map(|s| s.to_string()),
        )
        .unwrap();
        let err = start_live(&parsed).unwrap_err();
        assert_eq!(err.exit_code(), 7, "{err}");
    }

    #[test]
    fn serve_and_loadtest_require_an_address() {
        let err = run_cli(&["serve"]).unwrap_err();
        assert_eq!(err.exit_code(), 2, "{err}");
        assert!(err.to_string().contains("ppm serve <addr>"), "{err}");
        let err = run_cli(&["loadtest"]).unwrap_err();
        assert_eq!(err.exit_code(), 2, "{err}");
        assert!(err.to_string().contains("ppm loadtest <addr>"), "{err}");
    }

    #[test]
    fn serve_with_bad_chaos_seed_is_a_usage_error() {
        let err = run_cli(&["serve", "127.0.0.1:0", "--chaos", "banana"]).unwrap_err();
        assert_eq!(err.exit_code(), 2, "{err}");
    }

    #[test]
    fn serve_on_an_empty_registry_without_fallback_exits_8() {
        let dir = std::env::temp_dir().join("ppm_cli_serve_empty_reg");
        std::fs::create_dir_all(&dir).unwrap();
        let err = run_cli(&[
            "serve",
            "127.0.0.1:0",
            "--registry",
            dir.to_str().unwrap(),
            "--quiet",
        ])
        .unwrap_err();
        assert_eq!(err.exit_code(), 8, "{err}");
    }

    #[test]
    fn publish_refuses_garbage_with_exit_8() {
        let dir = std::env::temp_dir().join("ppm_cli_publish_test");
        std::fs::create_dir_all(&dir).unwrap();
        let junk = dir.join("junk.txt");
        std::fs::write(&junk, "not a model\n").unwrap();
        let err = run_cli(&[
            "publish",
            "--model",
            junk.to_str().unwrap(),
            "--registry",
            dir.join("registry").to_str().unwrap(),
        ])
        .unwrap_err();
        assert_eq!(err.exit_code(), 8, "{err}");
    }

    #[test]
    fn loadtest_against_a_dead_service_exits_8() {
        let port = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let err = run_cli(&[
            "loadtest",
            &format!("127.0.0.1:{port}"),
            "--requests",
            "2",
            "--concurrency",
            "1",
        ])
        .unwrap_err();
        assert_eq!(err.exit_code(), 8, "{err}");
    }

    #[test]
    fn predict_on_corrupt_model_is_a_persistence_error() {
        let dir = std::env::temp_dir().join("ppm_cli_corrupt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.txt");
        std::fs::write(&path, "not a model\n").unwrap();
        let err = run_cli(&["predict", "--model", path.to_str().unwrap()]).unwrap_err();
        assert_eq!(err.exit_code(), 4, "{err}");
        std::fs::remove_file(&path).ok();
    }
}
