//! CLI glue for the flight recorder: run-ledger assembly, trace-file
//! export, and the `ppm report` / `ppm check-trace` subcommands.
//!
//! The run loop in `main.rs` owns the [`ppm_obs::FlightRecorder`]; this
//! module turns what it captured (plus the command's
//! [`RunArtifacts`]) into the `ppm-ledger v1` document and decides
//! where it lands. Ledger writing is best-effort by design: a full disk
//! must not turn a successful model build into a failure.

use std::fmt;
use std::path::{Path, PathBuf};
use std::time::{SystemTime, UNIX_EPOCH};

use ppm_core::builder::ModelDiagnostics;
use ppm_obs::{compare, load_ledger, validate_chrome_trace, Json, Ledger, Thresholds};

use crate::cli::args::Parsed;
use crate::cli::commands::CliError;

/// Commands whose runs are worth a ledger entry. `predict` and
/// `benchmarks` are sub-millisecond lookups; `report`/`check-trace`
/// are the sentry itself.
pub const LEDGERED_COMMANDS: [&str; 5] =
    ["build", "simulate", "screen", "firstorder", "workload-info"];

/// Side results a command hands to the ledger writer, beyond its
/// stdout text.
#[derive(Debug, Default)]
pub struct RunArtifacts {
    /// Model-quality diagnostics from `build`, already in ledger form.
    pub diagnostics: Option<Json>,
}

/// Whether this invocation should write a run ledger.
pub fn wants_ledger(parsed: &Parsed) -> bool {
    LEDGERED_COMMANDS.contains(&parsed.command.as_str()) && !parsed.switch("--no-ledger")
}

/// Whether this invocation needs the recorder sink installed at all.
pub fn wants_recorder(parsed: &Parsed) -> bool {
    wants_ledger(parsed) || parsed.get("--trace-out").is_some()
}

/// Milliseconds since the Unix epoch (0 if the clock is before it).
pub fn now_unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

/// The run id: command, seed, and creation time, e.g.
/// `build-7-198c33a1f2e`. Unique per run, greppable by command.
pub fn run_id(parsed: &Parsed, created_unix_ms: u64) -> String {
    let seed = parsed.get("--seed").unwrap_or("1");
    format!("{}-{}-{:x}", parsed.command, seed, created_unix_ms)
}

/// Where the ledger lands: `--ledger-out` verbatim, else
/// `<--ledger-dir or results/runs>/<run-id>.json`.
pub fn ledger_path(parsed: &Parsed, run_id: &str) -> PathBuf {
    if let Some(path) = parsed.get("--ledger-out") {
        return PathBuf::from(path);
    }
    let dir = parsed.get("--ledger-dir").unwrap_or("results/runs");
    Path::new(dir).join(format!("{run_id}.json"))
}

/// The environment the ledger records: the variables that change run
/// behaviour, with `""` for unset.
pub fn ledger_env() -> Vec<(String, String)> {
    ["PPM_THREADS", "PPM_TRACE"]
        .iter()
        .map(|k| (k.to_string(), std::env::var(k).unwrap_or_default()))
        .collect()
}

/// Assembles the full ledger for a finished run.
pub fn assemble_ledger(
    parsed: &Parsed,
    artifacts: &RunArtifacts,
    recorder: &ppm_obs::FlightRecorder,
    created_unix_ms: u64,
    total_wall_us: u64,
    total_cpu_us: Option<u64>,
) -> Ledger {
    Ledger {
        run_id: run_id(parsed, created_unix_ms),
        created_unix_ms,
        command: parsed.command.clone(),
        args: parsed.flag_pairs(),
        env: ledger_env(),
        metrics: ppm_telemetry::snapshot(),
        diagnostics: artifacts.diagnostics.clone(),
        stages: recorder.stage_timings(),
        total_wall_us,
        total_cpu_us,
    }
}

/// Converts a build's [`ModelDiagnostics`] to the ledger's JSON form.
/// Every number here is a deterministic function of the configuration
/// and seed, so it belongs in the hashed body.
pub fn diagnostics_json(d: &ModelDiagnostics) -> Json {
    let mut entries: Vec<(String, Json)> = Vec::new();
    entries.push((
        "holdout".to_string(),
        match &d.holdout {
            Some(h) => Json::Obj(vec![
                ("mean_pct".to_string(), Json::Float(h.mean_pct)),
                ("max_pct".to_string(), Json::Float(h.max_pct)),
                ("std_pct".to_string(), Json::Float(h.std_pct)),
            ]),
            None => Json::Null,
        },
    ));
    entries.push((
        "regions".to_string(),
        Json::Arr(
            d.regions
                .iter()
                .map(|r| {
                    Json::Obj(vec![
                        ("leaf".to_string(), Json::from(r.leaf)),
                        ("count".to_string(), Json::from(r.count)),
                        ("mean_abs_pct".to_string(), Json::Float(r.mean_abs_pct)),
                        ("max_abs_pct".to_string(), Json::Float(r.max_abs_pct)),
                    ])
                })
                .collect(),
        ),
    ));
    entries.push(("centers".to_string(), Json::from(d.centers)));
    entries.push(("p_min".to_string(), Json::from(d.p_min)));
    entries.push(("alpha".to_string(), Json::Float(d.alpha)));
    entries.push(("aicc".to_string(), Json::Float(d.aicc)));
    entries.push(("train_sse".to_string(), Json::Float(d.train_sse)));
    entries.push(("discrepancy".to_string(), Json::Float(d.discrepancy)));
    entries.push(("quarantined".to_string(), Json::from(d.quarantined)));
    Json::Obj(entries)
}

/// The `ppm report` command: compares a candidate ledger against a
/// baseline and fails (exit code 5) on regression.
pub fn report(parsed: &Parsed, out: &mut dyn fmt::Write) -> Result<(), CliError> {
    let candidate_path = parsed.require("--candidate")?;
    let baseline_path = parsed.require("--against")?;
    let candidate = load_ledger(Path::new(candidate_path)).map_err(persistence)?;
    let baseline = load_ledger(Path::new(baseline_path)).map_err(persistence)?;
    let defaults = Thresholds::default();
    let thresholds = Thresholds {
        max_stage_ratio: parsed.num("--max-stage-ratio", defaults.max_stage_ratio)?,
        min_stage_us: parsed.num("--min-stage-us", defaults.min_stage_us)?,
        max_error_ratio: parsed.num("--max-error-ratio", defaults.max_error_ratio)?,
        error_slack_pp: parsed.num("--error-slack-pp", defaults.error_slack_pp)?,
        counter_tol: parsed.num("--counter-tol", defaults.counter_tol)?,
    };
    let report =
        compare(&baseline, &candidate, &thresholds).map_err(|e| CliError::Usage(e.to_string()))?;
    out.write_str(&report.human_table())
        .map_err(|e| CliError::Message(e.to_string()))?;
    if let Some(json_path) = parsed.get("--json-out") {
        ppm_obs::write_atomic(Path::new(json_path), report.to_json().dump().as_bytes())
            .map_err(|e| CliError::Persistence(format!("cannot write {json_path}: {e}")))?;
    }
    if report.regressed() {
        let names: Vec<String> = report.regressions().map(|f| f.name.clone()).collect();
        return Err(CliError::Regression(format!(
            "{} regressed vs {}: {}",
            candidate_path,
            baseline_path,
            names.join(", ")
        )));
    }
    Ok(())
}

/// The `ppm bench-export` command: extracts one wall-time measurement
/// from a run ledger and writes it as a `ppm-bench v1` file, the unit
/// of the perf history under `results/`.
///
/// `--stage` selects either a recorded stage span (e.g.
/// `stage.rbf_train`) or the literal `total` for the whole run's wall
/// time; `--bench` names the measurement; `--out` is the destination.
pub fn bench_export(parsed: &Parsed, out: &mut dyn fmt::Write) -> Result<(), CliError> {
    let ledger_path = parsed.require("--ledger")?;
    let stage = parsed.require("--stage")?;
    let bench = parsed.require("--bench")?;
    let out_path = parsed.require("--out")?;
    let doc = load_ledger(Path::new(ledger_path)).map_err(persistence)?;
    let header = doc.get("header").cloned().unwrap_or(Json::Null);
    let timings = header.get("timings").cloned().unwrap_or(Json::Null);
    let bad_ledger = |what: &str| CliError::Persistence(format!("{ledger_path}: missing {what}"));
    let wall_us = if stage == "total" {
        timings
            .get("total_wall_us")
            .and_then(Json::as_i64)
            .ok_or_else(|| bad_ledger("header.timings.total_wall_us"))?
    } else {
        let stages = match timings.get("stages") {
            Some(Json::Arr(items)) => items.as_slice(),
            _ => return Err(bad_ledger("header.timings.stages")),
        };
        let find = |name: &str| {
            stages
                .iter()
                .find(|s| s.get("name").and_then(Json::as_str) == Some(name))
        };
        find(stage)
            .and_then(|s| s.get("wall_us"))
            .and_then(Json::as_i64)
            .ok_or_else(|| {
                let known: Vec<&str> = stages
                    .iter()
                    .filter_map(|s| s.get("name").and_then(Json::as_str))
                    .collect();
                CliError::Usage(format!(
                    "no stage {stage:?} in {ledger_path} (recorded: {}; or use `total`)",
                    known.join(", ")
                ))
            })?
    };
    let record = ppm_obs::BenchRecord {
        bench: bench.to_string(),
        unit: "ms".to_string(),
        wall_ms: wall_us.max(0) as f64 / 1000.0,
        source_run: header
            .get("run_id")
            .and_then(Json::as_str)
            .unwrap_or("unknown")
            .to_string(),
        created_unix_ms: header
            .get("created_unix_ms")
            .and_then(Json::as_i64)
            .map(|v| v.max(0) as u64)
            .unwrap_or(0),
    };
    ppm_obs::write_bench(Path::new(out_path), &record)
        .map_err(|e| CliError::Persistence(format!("cannot write {out_path}: {e}")))?;
    writeln!(
        out,
        "bench {bench}: {:.3} ms ({stage} of {}) -> {out_path}",
        record.wall_ms, record.source_run
    )
    .map_err(|e| CliError::Message(e.to_string()))?;
    Ok(())
}

/// The `ppm check-trace` command: structurally validates a Chrome-trace
/// file written by `--trace-out`.
pub fn check_trace(parsed: &Parsed, out: &mut dyn fmt::Write) -> Result<(), CliError> {
    let path = parsed.require("--file")?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Persistence(format!("cannot read {path}: {e}")))?;
    let summary = validate_chrome_trace(&text)
        .map_err(|e| CliError::Persistence(format!("invalid trace {path}: {e}")))?;
    writeln!(
        out,
        "trace ok: {} spans, {} instants, {} threads",
        summary.spans, summary.instants, summary.threads
    )
    .map_err(|e| CliError::Message(e.to_string()))?;
    Ok(())
}

fn persistence(e: impl fmt::Display) -> CliError {
    CliError::Persistence(e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Parsed {
        match Parsed::parse(args.iter().map(|s| s.to_string())) {
            Ok(p) => p,
            Err(e) => panic!("parse failed: {e}"),
        }
    }

    #[test]
    fn ledger_targets_follow_flags() {
        let p = parse(&["build", "--benchmark", "mcf", "--out", "m.txt"]);
        assert!(wants_ledger(&p));
        assert!(wants_recorder(&p));
        let quiet = parse(&["build", "--benchmark", "mcf", "--no-ledger"]);
        assert!(!wants_ledger(&quiet));
        assert!(!wants_recorder(&quiet));
        let traced = parse(&["predict", "--model", "m.txt", "--trace-out", "t.json"]);
        assert!(!wants_ledger(&traced));
        assert!(wants_recorder(&traced));
        let report = parse(&["report", "--candidate", "a.json", "--against", "b.json"]);
        assert!(!wants_ledger(&report));
    }

    #[test]
    fn run_id_and_path_embed_command_and_seed() {
        let p = parse(&["build", "--seed", "7"]);
        let id = run_id(&p, 0x1234);
        assert_eq!(id, "build-7-1234");
        assert_eq!(
            ledger_path(&p, &id),
            PathBuf::from("results/runs/build-7-1234.json")
        );
        let o = parse(&["build", "--ledger-out", "x/y.json"]);
        assert_eq!(ledger_path(&o, "z"), PathBuf::from("x/y.json"));
        let d = parse(&["build", "--ledger-dir", "elsewhere"]);
        assert_eq!(
            ledger_path(&d, "build-1-2"),
            PathBuf::from("elsewhere/build-1-2.json")
        );
    }

    #[test]
    fn check_trace_accepts_recorder_output() {
        let recorder = ppm_obs::FlightRecorder::new();
        let dir = std::env::temp_dir().join(format!("ppm-flight-test-{}", std::process::id()));
        let path = dir.join("t.json");
        recorder
            .write_chrome_trace(&path)
            .map_err(|e| e.to_string())
            .ok();
        let p = parse(&["check-trace", "--file", path.to_string_lossy().as_ref()]);
        let mut out = String::new();
        check_trace(&p, &mut out).map_err(|e| panic!("{e}")).ok();
        assert!(out.contains("trace ok"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bench_export_extracts_stage_and_total_wall_times() {
        let dir = std::env::temp_dir().join(format!("ppm-bench-export-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ledger = Ledger {
            run_id: "build-7-abc".to_string(),
            created_unix_ms: 42,
            command: "build".to_string(),
            args: Vec::new(),
            env: Vec::new(),
            metrics: Vec::new(),
            diagnostics: None,
            stages: vec![ppm_obs::StageTiming {
                name: "stage.rbf_train".to_string(),
                wall_us: 2816,
                cpu_us: None,
            }],
            total_wall_us: 123_456,
            total_cpu_us: None,
        };
        let ledger_path = dir.join("ledger.json");
        ledger.write_atomic(&ledger_path).unwrap();
        let ledger_arg = ledger_path.to_str().unwrap();

        let bench_path = dir.join("BENCH_rbf_train.json");
        let p = parse(&[
            "bench-export",
            "--ledger",
            ledger_arg,
            "--stage",
            "stage.rbf_train",
            "--bench",
            "rbf_train",
            "--out",
            bench_path.to_str().unwrap(),
        ]);
        let mut out = String::new();
        bench_export(&p, &mut out).unwrap();
        assert!(out.contains("2.816 ms"), "{out}");
        let rec = ppm_obs::load_bench(&bench_path).unwrap();
        assert_eq!(rec.bench, "rbf_train");
        assert_eq!(rec.wall_ms, 2.816);
        assert_eq!(rec.source_run, "build-7-abc");

        // `total` reads the whole-run wall time.
        let total_path = dir.join("BENCH_total.json");
        let p = parse(&[
            "bench-export",
            "--ledger",
            ledger_arg,
            "--stage",
            "total",
            "--bench",
            "build_total",
            "--out",
            total_path.to_str().unwrap(),
        ]);
        bench_export(&p, &mut String::new()).unwrap();
        let rec = ppm_obs::load_bench(&total_path).unwrap();
        assert_eq!(rec.wall_ms, 123.456);

        // An unknown stage is a usage error naming the recorded ones.
        let p = parse(&[
            "bench-export",
            "--ledger",
            ledger_arg,
            "--stage",
            "stage.nope",
            "--bench",
            "x",
            "--out",
            dir.join("n.json").to_str().unwrap(),
        ]);
        let err = bench_export(&p, &mut String::new()).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("stage.rbf_train"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn report_requires_both_ledgers() {
        let p = parse(&["report", "--candidate", "only.json"]);
        let mut out = String::new();
        let err = match report(&p, &mut out) {
            Err(e) => e,
            Ok(()) => panic!("expected an error"),
        };
        assert_eq!(err.exit_code(), 2);
    }
}
