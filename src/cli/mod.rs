//! The `ppm` command-line interface.
//!
//! ```text
//! ppm benchmarks                          list the workload surrogates
//! ppm simulate  --benchmark mcf [config]  run one detailed simulation
//! ppm build     --benchmark mcf --out m.txt [--sample 90] [--metric cpi]
//!               [--train-threads N] [--lhs-candidates N]
//!               [--checkpoint j.txt [--resume]]
//! ppm predict   --model m.txt [config]    evaluate a saved model
//! ppm screen    --benchmark mcf           Plackett-Burman screening
//! ppm firstorder --benchmark mcf [config] analytical CPI estimate
//! ```
//!
//! Configuration flags (all optional, defaults are the mid-range
//! machine): `--depth N --rob N --iq F --lsq F --l2-kb N --l2-lat N
//! --il1-kb N --dl1-kb N --dl1-lat N`, plus `--instructions N` for the
//! trace length and `--seed N`.
//!
//! Observability flags, accepted by every command: `--quiet` (no
//! stderr progress), `--trace` (nested span tracing on stderr; the
//! `PPM_TRACE` environment variable does the same), and
//! `--metrics-out <file>` (JSON-lines telemetry export).
//!
//! The flight recorder rides along on every substantive command: a
//! `ppm-ledger v1` run manifest lands in `results/runs/` (`--ledger-out`
//! / `--ledger-dir` / `--no-ledger` to steer it), `--trace-out <file>`
//! exports the span tree as Chrome-trace/Perfetto JSON, and
//! `ppm report` diffs two ledgers as a regression sentry (exit code 5
//! on regression). See [`flight`].
//!
//! `ppm lint` runs the workspace's token-aware static-analysis pass
//! (`crates/lint`) and `ppm analyze` the cross-crate semantic pass
//! (`crates/analyze`: lock-order, atomic-ordering, panic-reachability,
//! wire-format and exit-code contracts); both exit 6 when a rule fires
//! — see the "Static analysis" section in README.md.
//!
//! The live observability plane (`crates/live`): `--live <addr>` on
//! `build`/`simulate`/`screen` serves `/metrics` (Prometheus text),
//! `/buildz` (JSON progress + ETA), and `/eventz` (recent events) over
//! HTTP for the duration of the run; `ppm top <addr>` renders it as a
//! terminal dashboard. Bind or endpoint failures exit with code 7.
//! `ppm bench-export` extracts a stage (or total) wall time from a run
//! ledger into a `ppm-bench v1` file for the perf history in
//! `results/`.
//!
//! The serving plane (`crates/serve`): `ppm serve <addr>` answers
//! `GET /predict` with deadline enforcement, load shedding, and
//! graceful degradation to the first-order analytical estimator;
//! `ppm publish` installs models in its content-addressed registry and
//! `ppm loadtest` drives a running service and gates on a p99 SLO.
//! Serve failures exit with code 8.

mod args;
mod commands;
pub mod flight;

pub use args::{ArgError, Parsed};
pub use commands::{run, run_with_artifacts, start_live, CliError, LIVE_COMMANDS};
pub use flight::RunArtifacts;

/// Usage text printed by `ppm help`.
pub const USAGE: &str = "\
ppm — predictive performance models for superscalar processors

USAGE:
  ppm <command> [flags]

COMMANDS:
  benchmarks                     list available workload surrogates
  simulate    --benchmark <b>    run one detailed simulation, or a whole
              [--batch <n>]      design-space sample in one trace pass
                                 (each lane cross-checked against a
                                 serial run of the same configuration)
  build       --benchmark <b> --out <file>
                                 build an RBF model (simulates a sample)
  predict     --model <file>     evaluate a saved model at a configuration
  screen      --benchmark <b>    Plackett-Burman main-effect screening
  firstorder  --benchmark <b>    first-order analytical CPI estimate
  workload-info --benchmark <b>  one-pass program statistics
  report      --candidate <ledger> --against <ledger>
                                 regression sentry: diff two run ledgers
  check-trace --file <trace>     validate a --trace-out Chrome-trace file
  bench-export --ledger <f> --stage <stage.name|total> --bench <name> --out <f>
                                 extract one wall time from a run ledger
                                 as a `ppm-bench v1` perf-history file
  lint        [--root <dir>] [--conf <file>] [--format human|json]
                                 static-analysis pass over the workspace
                                 sources (exit code 6 on findings)
  analyze     [--root <dir>] [--conf <file>] [--format human|json]
              [--rule <name>]    cross-crate semantic analysis: lock-order,
                                 atomic-ordering, panic-reachability,
                                 wire-format and exit-code contracts
                                 (exit code 6 on findings)
  top         <addr> [--once] [--interval-ms <n>]
                                 terminal dashboard for a --live endpoint
                                 or a serving plane (SLO burn rates)
  tail        <addr> [--once] [--interval-ms <n>] [--limit <n>]
              [--outcome <o>] [--min-ms <n>]
                                 stream the serving plane's retained
                                 request traces (/tracez) as a table
  serve       <addr> [--registry <dir>] [--benchmark <b>] [--chaos <seed>]
                                 fault-hardened CPI-prediction service:
                                 GET /predict /healthz /readyz /metrics
                                 /statusz /tracez, POST /reloadz /quitz
  publish     --model <file> --registry <dir>
                                 install a model in the serving registry
                                 (content-hash versioned, updates CURRENT)
  loadtest    <addr> [--requests <n>] [--concurrency <n>] [--rate <r>]
              [--slo-p99-ms <ms>] [--out <bench.json>]
              [--ab <addr> [--ab-out <bench.json>]] [--no-trace-check]
                                 drive a running service, report latency
                                 quantiles, cross-check request accounting
                                 against the server, optionally gate on a
                                 p99 SLO or measure tracing overhead (--ab)
  help                           print this text

CONFIGURATION FLAGS (defaults: the mid-range machine):
  --depth <7..24>     pipeline depth       --rob <24..128>   reorder buffer
  --iq <0.25..0.75>   IQ/ROB fraction      --lsq <0.25..0.75> LSQ/ROB fraction
  --l2-kb <256..8192> L2 capacity          --l2-lat <5..20>  L2 latency
  --il1-kb <8..64>    L1I capacity         --dl1-kb <8..64>  L1D capacity
  --dl1-lat <1..4>    L1D latency

OTHER FLAGS:
  --instructions <n>  trace length (default 100000)
  --seed <n>          workload seed (default 1)
  --sample <n>        training sample size for `build` (default 90)
  --metric <cpi|epi|edp>  modeled metric for `build` (default cpi)
  --lhs-candidates <n>  candidate hypercubes scored for `build` (default 200)
  --train-threads <n>  worker threads for sampling + training in `build`
                      (default: PPM_THREADS or machine parallelism; the
                      built model is identical for any value)
  --energy            also report the energy estimate (simulate)
  --batch <n>         simulate an n-point Latin-hypercube sample of the
                      Table 1 space in one batched trace pass (simulate)

FAULT-TOLERANCE FLAGS (`build`):
  --checkpoint <f>    journal completed simulations to <f> (crash-safe)
  --resume            reuse results already in the checkpoint file

EXIT CODES:
  0 success    2 usage error    3 simulation fault    4 persistence failure
  5 regression (`report`, `loadtest --slo-p99-ms`)
  6 static-analysis findings (`lint`, `analyze`)
  7 live-plane failure (`--live` bind, `ppm top` endpoint)
  8 serve failure (`serve` bind/registry, `publish`, `loadtest` transport,
    `ppm tail` first poll)
  1 other errors

SERVING FLAGS (`serve`):
  --registry <dir>    model registry (default registry/)
  --benchmark <b>     serve analytically when no model loads (degraded)
  --workers <n>       prediction workers (default 4)
  --queue <n>         queue slots per worker; full queues shed (default 8;
                      0 = shed-all drill mode: every request refused)
  --deadline-ms <n>   default request deadline (default 250)
  --max-deadline-ms <n>  cap on client ?deadline_ms= requests (default 5000)
  --degrade-depth <n> queue depth that degrades predictions to the
                      analytical estimator (default 16; 0 = always degraded)
  --fail-streak <n>   consecutive model failures before sticky degradation
  --probe-every <n>   probe cadence while sticky-degraded (default 16)
  --chaos <seed>      inject worker faults and misbehaving clients
  --no-trace          disable per-request tracing and /tracez
  --trace-ring <n>    retained trace records across shards (default 4096)
  --trace-sample <n>  keep 1-in-n plain-OK requests (default 64)
  --trace-slow-keep <n>  always keep the slowest n requests (default 32)
  --slo-availability <f>  availability objective (default 0.999)
  --slo-latency-ms <n>    latency objective for the SLO tracker (default 100)

OBSERVABILITY FLAGS (any command):
  --quiet             suppress progress output on stderr
  --trace             nested span tracing on stderr (or set PPM_TRACE=1)
  --metrics-out <f>   write spans, events, and metrics to <f> as JSON lines
  --live <addr>       serve /metrics /buildz /eventz over HTTP for the run
                      (build/simulate/screen; use 127.0.0.1:0 for an
                      ephemeral port, announced on stderr)
  --trace-out <f>     write the span tree as Chrome-trace/Perfetto JSON
  --ledger-out <f>    run-ledger path (default results/runs/<run-id>.json)
  --ledger-dir <d>    run-ledger directory (default results/runs)
  --no-ledger         skip the run ledger entirely
  --holdout <n>       held-out test points scored after `build` (default 12;
                      0 disables; statistics recorded in the run ledger)

REGRESSION SENTRY (`report`) FLAGS:
  --candidate <f>     the run ledger under test
  --against <f>       the baseline run ledger
  --json-out <f>      also write the findings as JSON
  --max-stage-ratio <r>   stage wall-time budget (default 2.0)
  --min-stage-us <n>      ignore stages faster than this (default 1000)
  --max-error-ratio <r>   model-error growth budget (default 1.10)
  --error-slack-pp <p>    absolute error slack, percentage points (0.1)
  --counter-tol <r>       allowed counter drift (default 0: exact)
";
