//! # ppm — Predictive Performance Models for Superscalar Processors
//!
//! A facade crate re-exporting the whole workspace: a reproduction of
//! P. J. Joseph, K. Vaswani, M. J. Thazhuthaveetil, *A Predictive
//! Performance Model for Superscalar Processors* (MICRO 2006).
//!
//! The workspace builds non-linear surrogate models of processor
//! performance (cycles per instruction) over a 9-parameter
//! microarchitectural design space:
//!
//! * [`sim`] — a cycle-level, trace-driven out-of-order superscalar
//!   simulator (the "detailed simulation" substrate).
//! * [`workload`] — deterministic synthetic workload surrogates for the
//!   eight SPEC CPU2000 benchmarks the paper studies.
//! * [`sampling`] — latin hypercube sampling and L2-star discrepancy.
//! * [`regtree`] — regression trees over sampled design points.
//! * [`rbf`] — radial basis function networks with tree-derived centers
//!   and AICc subset selection.
//! * [`linreg`] — the linear + two-factor-interaction baseline model.
//! * [`model`] — the end-to-end `BuildRBFmodel` procedure tying it all
//!   together, plus evaluation and trend-analysis utilities.
//!
//! # Quickstart
//!
//! ```no_run
//! use ppm::model::{BuildConfig, RbfModelBuilder};
//! use ppm::model::space::DesignSpace;
//! use ppm::model::response::SimulatorResponse;
//! use ppm::workload::Benchmark;
//!
//! let space = DesignSpace::paper_table1();
//! let response = SimulatorResponse::new(Benchmark::Mcf, 200_000);
//! let config = BuildConfig::default().with_sample_size(90);
//! let built = RbfModelBuilder::new(space, config).build(&response).unwrap();
//! println!("model with {} centers", built.model.network.num_centers());
//! ```

pub mod cli;

pub use ppm_core as model;
pub use ppm_firstorder as firstorder;
pub use ppm_linalg as linalg;
pub use ppm_linreg as linreg;
pub use ppm_rbf as rbf;
pub use ppm_regtree as regtree;
pub use ppm_rng as rng;
pub use ppm_sampling as sampling;
pub use ppm_sim as sim;
pub use ppm_workload as workload;
