//! The `ppm` command-line tool. See `ppm help` or [`ppm::cli::USAGE`].

use std::fs::File;
use std::io::BufWriter;
use std::path::Path;
use std::process::ExitCode;
use std::time::Instant;

use ppm::cli::{self, flight, Parsed, RunArtifacts};
use ppm_obs::FlightRecorder;
use ppm_telemetry as tel;

/// Installs telemetry sinks from `--quiet` / `--trace` / `--metrics-out`
/// and the `PPM_TRACE` environment variable.
///
/// Precedence: `--quiet` silences the stderr reporter entirely;
/// otherwise `--trace` (or a non-empty, non-`0` `PPM_TRACE`) selects
/// full tracing and the default is stage-level progress. `--metrics-out`
/// additionally writes every record as JSON lines to the given path.
fn init_telemetry(parsed: &Parsed) -> Result<(), String> {
    let env_trace = std::env::var("PPM_TRACE")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false);
    let verbosity = if parsed.switch("--quiet") {
        tel::Verbosity::Quiet
    } else if parsed.switch("--trace") || env_trace {
        tel::Verbosity::Trace
    } else {
        tel::Verbosity::Progress
    };
    if verbosity > tel::Verbosity::Quiet {
        tel::add_sink(Box::new(tel::StderrSink::new(verbosity)));
    }
    if let Some(path) = parsed.get("--metrics-out") {
        let file =
            File::create(path).map_err(|e| format!("cannot create metrics file {path}: {e}"))?;
        tel::add_sink(Box::new(tel::JsonlSink::new(BufWriter::new(file))));
    }
    Ok(())
}

/// Writes the flight-recorder artifacts after a run: the Chrome-trace
/// file when `--trace-out` was given (failure is fatal — the user asked
/// for that file) and the run ledger (failure is a warning — a full
/// disk must not fail a successful build).
fn write_flight_artifacts(
    parsed: &Parsed,
    artifacts: &RunArtifacts,
    recorder: &FlightRecorder,
    created_unix_ms: u64,
    started: Instant,
    cpu_start: Option<u64>,
) -> Result<(), String> {
    if let Some(path) = parsed.get("--trace-out") {
        recorder
            .write_chrome_trace(Path::new(path))
            .map_err(|e| format!("cannot write trace {path}: {e}"))?;
    }
    if flight::wants_ledger(parsed) {
        let total_wall_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        let total_cpu_us = match (cpu_start, tel::process_cpu_us()) {
            (Some(a), Some(b)) => Some(b.saturating_sub(a)),
            _ => None,
        };
        let ledger = flight::assemble_ledger(
            parsed,
            artifacts,
            recorder,
            created_unix_ms,
            total_wall_us,
            total_cpu_us,
        );
        let path = flight::ledger_path(parsed, &ledger.run_id);
        if let Err(e) = ledger.write_atomic(&path) {
            eprintln!("warning: run ledger not written to {}: {e}", path.display());
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match Parsed::parse(args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    if let Err(e) = init_telemetry(&parsed) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    // The live observability plane (`--live <addr>`): started before the
    // run so scrapers can watch it from the first point; the handle must
    // stay alive until the command finishes. Bind failures are their own
    // exit code (7) so supervisors can tell "port taken" from "run broke".
    let live_server = match cli::start_live(&parsed) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(e.exit_code());
        }
    };
    let recorder = FlightRecorder::new();
    if flight::wants_recorder(&parsed) {
        tel::add_sink(recorder.sink());
    }
    let created_unix_ms = flight::now_unix_ms();
    let started = Instant::now();
    let cpu_start = tel::process_cpu_us();
    let mut out = String::new();
    let mut artifacts = RunArtifacts::default();
    let result = cli::run_with_artifacts(&parsed, &mut out, &mut artifacts);
    let flight_result = write_flight_artifacts(
        &parsed,
        &artifacts,
        &recorder,
        created_unix_ms,
        started,
        cpu_start,
    );
    // Stop the live plane before tearing down sinks: the accept thread
    // must not serve a half-cleared registry.
    drop(live_server);
    tel::export_metrics();
    tel::clear_sinks();
    if let Err(e) = &flight_result {
        eprintln!("error: {e}");
    }
    match result {
        Ok(()) => {
            print!("{out}");
            if flight_result.is_err() {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            print!("{out}");
            eprintln!("error: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}
