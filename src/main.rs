//! The `ppm` command-line tool. See `ppm help` or [`ppm::cli::USAGE`].

use std::process::ExitCode;

use ppm::cli::{self, Parsed};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match Parsed::parse(args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut out = String::new();
    match cli::run(&parsed, &mut out) {
        Ok(()) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            print!("{out}");
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
