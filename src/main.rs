//! The `ppm` command-line tool. See `ppm help` or [`ppm::cli::USAGE`].

use std::fs::File;
use std::io::BufWriter;
use std::process::ExitCode;

use ppm::cli::{self, Parsed};
use ppm_telemetry as tel;

/// Installs telemetry sinks from `--quiet` / `--trace` / `--metrics-out`
/// and the `PPM_TRACE` environment variable.
///
/// Precedence: `--quiet` silences the stderr reporter entirely;
/// otherwise `--trace` (or a non-empty, non-`0` `PPM_TRACE`) selects
/// full tracing and the default is stage-level progress. `--metrics-out`
/// additionally writes every record as JSON lines to the given path.
fn init_telemetry(parsed: &Parsed) -> Result<(), String> {
    let env_trace = std::env::var("PPM_TRACE")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false);
    let verbosity = if parsed.switch("--quiet") {
        tel::Verbosity::Quiet
    } else if parsed.switch("--trace") || env_trace {
        tel::Verbosity::Trace
    } else {
        tel::Verbosity::Progress
    };
    if verbosity > tel::Verbosity::Quiet {
        tel::add_sink(Box::new(tel::StderrSink::new(verbosity)));
    }
    if let Some(path) = parsed.get("--metrics-out") {
        let file =
            File::create(path).map_err(|e| format!("cannot create metrics file {path}: {e}"))?;
        tel::add_sink(Box::new(tel::JsonlSink::new(BufWriter::new(file))));
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match Parsed::parse(args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    if let Err(e) = init_telemetry(&parsed) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    let mut out = String::new();
    let result = cli::run(&parsed, &mut out);
    tel::export_metrics();
    tel::clear_sinks();
    match result {
        Ok(()) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            print!("{out}");
            eprintln!("error: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}
