//! The executor's central contract, proven end to end: every
//! parallelized training hot path — the LHS candidate sweep, the
//! (p_min, α) grid search, cross-validated fold refits, and the full
//! `BuildRBFmodel` procedure — produces output byte-identical to its
//! serial run, for any thread count and any seed.

use ppm::model::{BuildConfig, FnResponse, RbfModelBuilder};
use ppm_core::crossval::CrossValidator;
use ppm_core::space::DesignSpace;
use ppm_rbf::RbfTrainer;
use ppm_regtree::Dataset;
use ppm_rng::Rng;
use ppm_sampling::lhs::LatinHypercube;
use ppm_sampling::space::{ParamDef, ParamSpace, Transform};

const THREAD_COUNTS: [usize; 2] = [2, 8];

fn noisy_sample(seed: u64, n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = Rng::seed_from_u64(seed);
    let pts: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..3).map(|_| rng.unit_f64()).collect())
        .collect();
    let y = pts
        .iter()
        .map(|p| 2.0 + p[0] + (3.0 * p[1]).sin() * 0.5 + 0.05 * rng.normal())
        .collect();
    (pts, y)
}

/// Property: the trainer's parallel grid search returns the same fitted
/// model as the serial one, across seeds.
#[test]
fn trainer_fit_is_thread_count_invariant_across_seeds() {
    for seed in [3u64, 17, 90] {
        let (pts, y) = noisy_sample(seed, 40);
        let data = Dataset::new(pts, y).expect("consistent sample");
        let reference = RbfTrainer::quick().with_threads(1).fit(&data).unwrap();
        for threads in THREAD_COUNTS {
            let fitted = RbfTrainer::quick()
                .with_threads(threads)
                .fit(&data)
                .unwrap();
            assert_eq!(reference, fitted, "seed {seed}, threads {threads}");
        }
    }
}

/// Property: the parallel candidate sweep picks the same design with
/// the same discrepancy as the serial one, across seeds.
#[test]
fn lhs_best_of_is_thread_count_invariant_across_seeds() {
    let space = ParamSpace::new(vec![
        ParamDef::continuous("a", 0.0, 1.0),
        ParamDef::leveled("b", 8.0, 64.0, 4, Transform::Log),
        ParamDef::continuous("c", 0.5, 2.0),
    ]);
    for seed in [1u64, 29, 4096] {
        let lhs = LatinHypercube::new(&space, 24);
        let reference = lhs
            .clone()
            .with_threads(1)
            .best_of_with_score(40, &mut Rng::seed_from_u64(seed))
            .unwrap();
        for threads in THREAD_COUNTS {
            let got = lhs
                .clone()
                .with_threads(threads)
                .best_of_with_score(40, &mut Rng::seed_from_u64(seed))
                .unwrap();
            assert_eq!(reference, got, "seed {seed}, threads {threads}");
        }
    }
}

/// Property: parallel fold refits yield the same cross-validation
/// statistics as serial ones, across seeds.
#[test]
fn crossval_is_thread_count_invariant_across_seeds() {
    for seed in [5u64, 111] {
        let (pts, y) = noisy_sample(seed, 30);
        let reference = CrossValidator::new(RbfTrainer::quick(), 5)
            .with_threads(1)
            .run(&pts, &y)
            .unwrap();
        for threads in THREAD_COUNTS {
            let got = CrossValidator::new(RbfTrainer::quick(), 5)
                .with_threads(threads)
                .run(&pts, &y)
                .unwrap();
            assert_eq!(reference, got, "seed {seed}, threads {threads}");
        }
    }
}

/// The full `BuildRBFmodel` run — sampling, simulation, training — is
/// byte-identical between a single-threaded and an 8-thread build.
#[test]
fn full_build_is_byte_identical_across_thread_counts() {
    let response = || {
        FnResponse::new(9, |x: &[f64]| {
            2.0 + 1.5 * x[0] + (2.0 * x[4]).exp() * 0.2 + x[5] * x[5] - 0.5 * x[5] * x[6]
        })
        .expect("non-zero dimension")
    };
    let build = |threads: usize| {
        let config = BuildConfig::quick(40)
            .with_seed(12)
            .with_train_threads(threads);
        RbfModelBuilder::new(DesignSpace::paper_table1(), config)
            .build(&response())
            .expect("clean build")
    };
    let serial = build(1);
    for threads in THREAD_COUNTS {
        let parallel = build(threads);
        assert_eq!(serial.model, parallel.model, "threads {threads}");
        assert_eq!(serial.design, parallel.design, "threads {threads}");
        assert_eq!(serial.responses, parallel.responses, "threads {threads}");
        assert_eq!(
            serial.discrepancy.to_bits(),
            parallel.discrepancy.to_bits(),
            "threads {threads}"
        );
    }
}
