//! End-to-end integration: the full BuildRBFmodel pipeline over the
//! real simulator, exercised through the `ppm` facade exactly as a
//! downstream user would.

use ppm::model::builder::{BuildConfig, RbfModelBuilder};
use ppm::model::metrics::ErrorStats;
use ppm::model::response::{eval_batch, SimulatorResponse};
use ppm::model::space::DesignSpace;
use ppm::model::study::fit_linear_baseline;
use ppm::workload::Benchmark;

/// Small but real: 40 training simulations of 40k instructions.
fn quick_build(bench: Benchmark) -> (RbfModelBuilder, SimulatorResponse, ppm::model::BuiltModel) {
    let space = DesignSpace::paper_table1();
    let response = SimulatorResponse::new(bench, 40_000);
    let builder = RbfModelBuilder::new(space, BuildConfig::quick(40));
    let built = builder.build(&response).expect("finite CPI responses");
    (builder, response, built)
}

#[test]
fn pipeline_builds_an_accurate_model_of_the_simulator() {
    let (builder, response, built) = quick_build(Benchmark::Crafty);
    let test = builder.test_points(&DesignSpace::paper_table2(), 12);
    let actual = eval_batch(&response, &test, 1).expect("clean batch");
    let stats = built.evaluate(&test, &actual);
    // Reduced-scale accuracy band: the paper reaches ~3% at n=200; with
    // n=40 and short traces we accept anything clearly informative.
    assert!(
        stats.mean_pct < 8.0,
        "mean error {stats} too high for a working pipeline"
    );
    assert!(stats.max_pct < 30.0, "max error {stats}");
}

#[test]
fn rbf_beats_the_linear_baseline_on_the_same_sample() {
    let (builder, response, built) = quick_build(Benchmark::Mcf);
    let linear = fit_linear_baseline(&built.design, &built.responses).expect("fits");
    let test = builder.test_points(&DesignSpace::paper_table2(), 12);
    let actual = eval_batch(&response, &test, 1).expect("clean batch");
    let rbf = built.evaluate(&test, &actual);
    let lin_pred: Vec<f64> = test.iter().map(|p| linear.predict(p)).collect();
    let lin = ErrorStats::from_predictions(&lin_pred, &actual);
    assert!(
        rbf.mean_pct < lin.mean_pct,
        "rbf ({rbf}) should beat linear ({lin}) — the paper's Figure 7 claim"
    );
}

#[test]
fn whole_pipeline_is_deterministic() {
    let (_, _, a) = quick_build(Benchmark::Twolf);
    let (_, _, b) = quick_build(Benchmark::Twolf);
    assert_eq!(a.design, b.design);
    assert_eq!(a.responses, b.responses);
    let x = [0.3; 9];
    assert_eq!(a.predict(&x), b.predict(&x));
}

#[test]
fn model_tracks_a_first_order_trend_of_the_simulator() {
    // The model must know that mcf gets slower when the L2 latency
    // grows (unit coordinate 5 moving to 0).
    let (_, _, built) = quick_build(Benchmark::Mcf);
    let mut slow = [0.5; 9];
    slow[5] = 0.05;
    let mut fast = [0.5; 9];
    fast[5] = 0.95;
    assert!(
        built.predict(&slow) > built.predict(&fast),
        "model misses the L2-latency trend"
    );
}

#[test]
fn facade_reexports_compose() {
    // Touch every re-exported crate through the facade in one flow.
    let mut rng = ppm::rng::Rng::seed_from_u64(1);
    let space = DesignSpace::paper_table1();
    let design = ppm::sampling::lhs::LatinHypercube::new(space.params(), 16).generate(&mut rng);
    let y: Vec<f64> = design.iter().map(|p| 1.0 + p[0]).collect();
    let data = ppm::regtree::Dataset::new(design, y).expect("valid");
    let tree = ppm::regtree::RegressionTree::fit(&data, 2);
    let result =
        ppm::rbf::select_centers(&tree, &data, &ppm::rbf::SelectionConfig::with_alpha(6.0));
    assert!(result.network.num_centers() >= 1);
    let m = ppm::linalg::Matrix::identity(3);
    assert_eq!(m.matvec(&[1.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0]);
}
