//! Fault-injection tests for the fault-tolerant pipeline: supervised
//! execution, graceful degradation, and crash-safe checkpoint/resume.
//!
//! The centerpiece scenario kills a model build mid-batch with injected
//! panics, resumes from the journal, and proves the final model is
//! byte-identical to an uninterrupted run with zero re-simulation of
//! journaled points (via the `sim.batch_points` telemetry counter).

use std::sync::{Mutex, MutexGuard};

use ppm::model::builder::{BuildConfig, BuildError, RbfModelBuilder};
use ppm::model::response::{FnResponse, Response};
use ppm::model::space::DesignSpace;
use ppm::model::supervise::{eval_batch_supervised, SupervisorPolicy};
use ppm::model::{persist, Checkpoint, FaultPlan, FaultyResponse, InjectedFault};
use ppm_telemetry as tel;

/// Telemetry counters are process-global; tests that read them must not
/// interleave.
static SERIAL: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|poison| poison.into_inner())
}

/// Silences the default panic hook while injected panics fly, so the
/// test output stays readable. Restores the hook on drop.
struct QuietPanics;

impl QuietPanics {
    fn install() -> Self {
        std::panic::set_hook(Box::new(|_| {}));
        QuietPanics
    }
}

impl Drop for QuietPanics {
    fn drop(&mut self) {
        let _ = std::panic::take_hook();
    }
}

fn clean_response() -> FnResponse<impl Fn(&[f64]) -> f64 + Sync> {
    FnResponse::new(9, |x| {
        2.0 + 1.5 * x[0] + 0.3 * (2.0 * x[4]).exp() + x[5] * x[5] - 0.5 * x[5] * x[6]
    })
    .expect("non-zero dimension")
}

/// A deterministic 9-dimensional low-discrepancy point set.
fn unit_points(n: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            (0..9)
                .map(|d| (((i * 9 + d) as f64) * 0.618_034).fract())
                .collect()
        })
        .collect()
}

fn temp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("ppm_fault_injection_tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

#[test]
fn transient_panics_recover_through_retries() {
    let _serial = lock();
    let _quiet = QuietPanics::install();
    let clean = clean_response();
    let plan = FaultPlan::default()
        .with_panic_rate(0.3)
        .with_transient_attempts(1);
    let faulty = FaultyResponse::new(clean_response(), plan);
    let points = unit_points(30);

    let retries_before = tel::counter("robust.retries").get();
    let policy = SupervisorPolicy::default().with_max_retries(2);
    let outcome = eval_batch_supervised(&faulty, &points, 4, &policy, &[])
        .expect("transient faults must not kill the batch");

    assert!(outcome.quarantined.is_empty(), "{:?}", outcome.quarantined);
    assert!(
        faulty.injected_failures() > 0,
        "the plan never fired — fault rate too low for this point set"
    );
    assert!(
        tel::counter("robust.retries").get() > retries_before,
        "recovery must go through the supervisor's retry path"
    );
    // Despite the injected failures, every value is the true response.
    for (p, v) in points.iter().zip(&outcome.values) {
        assert_eq!(v.expect("no quarantine"), clean.eval(p));
    }
}

#[test]
fn slow_evaluations_survive_without_quarantine() {
    let _serial = lock();
    let clean = clean_response();
    let faulty = FaultyResponse::new(clean_response(), FaultPlan::default().with_slow_rate(1.0));
    let points = unit_points(8);
    let outcome =
        eval_batch_supervised(&faulty, &points, 4, &SupervisorPolicy::strict(), &[]).unwrap();
    assert!(outcome.quarantined.is_empty());
    for (p, v) in points.iter().zip(&outcome.values) {
        assert_eq!(v.expect("no quarantine"), clean.eval(p));
    }
}

#[test]
fn sparse_permanent_faults_degrade_gracefully() {
    let _serial = lock();
    let plan = FaultPlan::default().with_nan_rate(0.1).with_seed(7);
    let faulty = FaultyResponse::new(clean_response(), plan.clone());
    let config = BuildConfig::quick(50)
        .with_supervisor(SupervisorPolicy::default().with_max_quarantined_frac(0.3));
    let builder = RbfModelBuilder::new(DesignSpace::paper_table1(), config);

    let quarantined_before = tel::counter("robust.quarantined").get();
    let built = builder
        .build(&faulty)
        .expect("sparse faults must degrade, not fail");

    assert!(
        !built.quarantined.is_empty(),
        "fault rate too low: no design point drew a fault"
    );
    assert_eq!(built.design.len() + built.quarantined.len(), 50);
    // The dropped points are exactly the planned fault sites.
    for q in &built.quarantined {
        assert_eq!(plan.fault_at(&q.point), Some(InjectedFault::Nan));
    }
    assert_eq!(
        tel::counter("robust.quarantined").get() - quarantined_before,
        built.quarantined.len() as u64
    );
    assert!(built.predict(&[0.5; 9]).is_finite());
}

#[test]
fn excessive_faults_fail_with_a_typed_error() {
    let _serial = lock();
    let faulty = FaultyResponse::new(clean_response(), FaultPlan::default().with_inf_rate(1.0));
    let builder = RbfModelBuilder::new(DesignSpace::paper_table1(), BuildConfig::quick(20));
    let err = builder.build(&faulty).unwrap_err();
    match err {
        BuildError::ExcessiveFaults {
            quarantined, total, ..
        } => {
            assert_eq!(quarantined, 20);
            assert_eq!(total, 20);
        }
        other => panic!("expected ExcessiveFaults, got {other:?}"),
    }
}

/// The acceptance scenario: a study is killed mid-batch by injected
/// panics, its completed simulations survive in the journal, and a
/// resumed run (a) never re-simulates a journaled point and (b) saves a
/// model byte-identical to an uninterrupted run.
#[test]
fn interrupted_build_resumes_bit_identical_with_zero_resimulation() {
    let _serial = lock();
    let _quiet = QuietPanics::install();
    let space = DesignSpace::paper_table1();
    let builder = RbfModelBuilder::new(space, BuildConfig::quick(40));
    let clean = clean_response();
    let meta = vec![("benchmark".to_string(), "analytic".to_string())];

    // Reference: the uninterrupted run.
    let reference = builder.build(&clean).expect("clean build");
    let reference_text = persist::to_string(&reference.model.network, &meta);

    // Interrupted run: permanent injected panics push the quarantine
    // fraction over the default 10% threshold, killing the study
    // mid-batch — but only after the survivors reach the journal.
    let path = temp_path("resume.ckpt");
    std::fs::remove_file(&path).ok();
    let mut journal = Checkpoint::create(&path, &meta);
    let faulty = FaultyResponse::new(
        clean_response(),
        FaultPlan::default().with_panic_rate(0.25).with_seed(3),
    );
    let err = builder
        .build_checkpointed(&faulty, &mut journal)
        .unwrap_err();
    let BuildError::ExcessiveFaults {
        quarantined, total, ..
    } = err
    else {
        panic!("expected ExcessiveFaults, got {err:?}");
    };
    assert_eq!(total, 40);
    assert!(
        quarantined > 4,
        "need > 10% of 40 points quarantined to kill the build, got {quarantined}"
    );

    // The journal on disk holds exactly the surviving points.
    let loaded = Checkpoint::load(&path).expect("journal must be readable after the crash");
    assert_eq!(loaded.len(), 40 - quarantined);

    // Resume with a healthy response: only the previously-quarantined
    // points are simulated; everything journaled is served from disk.
    let fresh_before = tel::counter("sim.batch_points").get();
    let resumed_before = tel::counter("robust.resumed").get();
    let mut journal = loaded;
    let resumed = builder
        .build_checkpointed(&clean, &mut journal)
        .expect("resumed build");
    let fresh_evals = tel::counter("sim.batch_points").get() - fresh_before;
    let served = tel::counter("robust.resumed").get() - resumed_before;
    assert_eq!(
        fresh_evals as usize, quarantined,
        "journaled points were re-simulated"
    );
    assert_eq!(served as usize, 40 - quarantined);

    // The resumed model is byte-identical to the uninterrupted one.
    let resumed_text = persist::to_string(&resumed.model.network, &meta);
    assert_eq!(resumed_text, reference_text);
    assert!(resumed.quarantined.is_empty());
    assert_eq!(journal.len(), 40, "the resumed run completes the journal");
    std::fs::remove_file(&path).ok();
}

/// A second resume over a complete journal re-simulates nothing at all
/// and still reproduces the same model.
#[test]
fn resume_over_a_complete_journal_simulates_nothing() {
    let _serial = lock();
    let builder = RbfModelBuilder::new(DesignSpace::paper_table1(), BuildConfig::quick(30));
    let clean = clean_response();
    let path = temp_path("complete.ckpt");
    std::fs::remove_file(&path).ok();

    let mut journal = Checkpoint::create(&path, &[]);
    let first = builder.build_checkpointed(&clean, &mut journal).unwrap();

    let fresh_before = tel::counter("sim.batch_points").get();
    let mut journal = Checkpoint::load(&path).unwrap();
    let second = builder.build_checkpointed(&clean, &mut journal).unwrap();
    assert_eq!(
        tel::counter("sim.batch_points").get(),
        fresh_before,
        "a complete journal must serve every point"
    );
    assert_eq!(
        persist::to_string(&second.model.network, &[]),
        persist::to_string(&first.model.network, &[])
    );
    std::fs::remove_file(&path).ok();
}
