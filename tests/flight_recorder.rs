//! End-to-end tests for the flight recorder: run ledgers, trace
//! export, the regression sentry, and the JSONL metrics schema.
//!
//! Everything here drives the real `ppm` binary as a subprocess
//! (`CARGO_BIN_EXE_ppm`), so global telemetry state is per-run and the
//! assertions cover the exact artifacts users and `scripts/verify.sh`
//! see.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use ppm_obs::{validate_chrome_trace, verify_content_hash, Json};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ppm-flight-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn ppm(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_ppm"))
        .args(args)
        .output()
        .expect("ppm binary runs")
}

fn ppm_in(dir: &Path, args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_ppm"))
        .current_dir(dir)
        .args(args)
        .output()
        .expect("ppm binary runs")
}

fn assert_code(out: &Output, want: i32) {
    assert_eq!(
        out.status.code(),
        Some(want),
        "stdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

/// A cheap fixed-seed smoke build run *inside* `dir` with relative
/// paths, so two runs in different directories share a byte-identical
/// command line (the ledger body records every argument verbatim).
fn smoke_build(dir: &Path) -> Output {
    ppm_in(
        dir,
        &[
            "build",
            "--benchmark",
            "ammp",
            "--sample",
            "20",
            "--instructions",
            "10000",
            "--seed",
            "7",
            "--train-threads",
            "2",
            "--holdout",
            "6",
            "--quiet",
            "--out",
            "m.txt",
            "--ledger-out",
            "ledger.json",
        ],
    )
}

fn load(path: &Path) -> Json {
    let text = std::fs::read_to_string(path).unwrap();
    Json::parse(&text).unwrap()
}

#[test]
fn identical_runs_write_byte_identical_ledger_bodies() {
    let dir = scratch("determinism");
    let (run1, run2) = (dir.join("run1"), dir.join("run2"));
    std::fs::create_dir_all(&run1).unwrap();
    std::fs::create_dir_all(&run2).unwrap();
    assert_code(&smoke_build(&run1), 0);
    assert_code(&smoke_build(&run2), 0);
    let l1 = load(&run1.join("ledger.json"));
    let l2 = load(&run2.join("ledger.json"));

    // The deterministic body must match to the byte; the headers carry
    // the run-specific identity and must not.
    assert_eq!(
        l1.get("body").unwrap().dump(),
        l2.get("body").unwrap().dump()
    );
    assert_ne!(
        l1.get("header").unwrap().get("run_id"),
        l2.get("header").unwrap().get("run_id")
    );
    verify_content_hash(&l1).unwrap();
    verify_content_hash(&l2).unwrap();

    // The body records what matters: command, args, env, deterministic
    // metrics, and the model diagnostics with held-out statistics.
    let body = l1.get("body").unwrap();
    assert_eq!(body.get("command").and_then(Json::as_str), Some("build"));
    assert_eq!(
        body.get("args")
            .and_then(|a| a.get("--seed"))
            .and_then(Json::as_str),
        Some("7")
    );
    assert!(body.get("env").and_then(|e| e.get("PPM_THREADS")).is_some());
    let diag = body.get("diagnostics").unwrap();
    assert!(
        diag.get("holdout")
            .unwrap()
            .get("mean_pct")
            .unwrap()
            .as_f64()
            .unwrap()
            >= 0.0
    );
    assert!(!diag.get("regions").unwrap().as_arr().unwrap().is_empty());
    assert!(diag.get("centers").unwrap().as_i64().unwrap() > 0);
    let metrics = body.get("metrics").and_then(Json::as_arr).unwrap();
    assert!(!metrics.is_empty());
    for m in metrics {
        let name = m.get("name").and_then(Json::as_str).unwrap();
        assert!(
            !name.starts_with("span.") && !name.ends_with(".us") && !name.ends_with(".ms"),
            "timing-dependent metric {name} leaked into the hashed body"
        );
    }

    // The header carries per-stage timings for the pipeline stages.
    let stages = l1
        .get("header")
        .and_then(|h| h.get("timings"))
        .and_then(|t| t.get("stages"))
        .and_then(Json::as_arr)
        .unwrap();
    let names: Vec<&str> = stages
        .iter()
        .filter_map(|s| s.get("name").and_then(Json::as_str))
        .collect();
    assert!(names.contains(&"stage.simulation"), "{names:?}");
    assert!(names.contains(&"stage.rbf_train"), "{names:?}");
    assert!(names.contains(&"stage.holdout"), "{names:?}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sentry_passes_self_compare_and_fails_doctored_ledger() {
    let dir = scratch("sentry");
    assert_code(&smoke_build(&dir), 0);
    let base = dir.join("ledger.json");
    let base_str = base.to_str().unwrap();

    // A ledger compared against itself is clean (exit 0).
    let out = ppm(&["report", "--candidate", base_str, "--against", base_str]);
    assert_code(&out, 0);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("verdict: OK"), "{stdout}");

    // Doctoring the candidate — a 10x slower training stage and a
    // drifted counter — must trip the sentry with exit code 5.
    let doc = load(&base);
    let mut text = doc.dump();
    let stages = doc
        .get("header")
        .and_then(|h| h.get("timings"))
        .and_then(|t| t.get("stages"))
        .and_then(Json::as_arr)
        .unwrap();
    let rbf_wall = stages
        .iter()
        .find(|s| s.get("name").and_then(Json::as_str) == Some("stage.rbf_train"))
        .and_then(|s| s.get("wall_us"))
        .and_then(Json::as_i64)
        .unwrap();
    text = text.replace(
        &format!("\"wall_us\":{rbf_wall}"),
        &format!("\"wall_us\":{}", rbf_wall * 10),
    );
    let doctored = dir.join("doctored.json");
    std::fs::write(&doctored, &text).unwrap();
    let out = ppm(&[
        "report",
        "--candidate",
        doctored.to_str().unwrap(),
        "--against",
        base_str,
        "--json-out",
        dir.join("report.json").to_str().unwrap(),
    ]);
    assert_code(&out, 5);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("REGRESSED"), "{stdout}");
    let report = load(&dir.join("report.json"));
    assert_eq!(report.get("regressed"), Some(&Json::Bool(true)));

    // Unreadable inputs are persistence failures (4), not regressions.
    let out = ppm(&[
        "report",
        "--candidate",
        "missing.json",
        "--against",
        base_str,
    ]);
    assert_code(&out, 4);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_out_writes_a_valid_chrome_trace_with_worker_lanes() {
    let dir = scratch("trace");
    let trace = dir.join("t.json");
    let out = ppm(&[
        "build",
        "--benchmark",
        "ammp",
        "--sample",
        "20",
        "--instructions",
        "10000",
        "--seed",
        "7",
        "--train-threads",
        "2",
        "--holdout",
        "0",
        "--quiet",
        "--no-ledger",
        "--out",
        dir.join("m.txt").to_str().unwrap(),
        "--trace-out",
        trace.to_str().unwrap(),
    ]);
    assert_code(&out, 0);

    let text = std::fs::read_to_string(&trace).unwrap();
    let summary = validate_chrome_trace(&text).unwrap();
    assert!(summary.spans > 0);
    assert!(
        summary.threads >= 2,
        "parallel training should populate worker lanes: {summary:?}"
    );
    // Worker shards from the deterministic executor appear as slices.
    assert!(text.contains("exec."), "no worker shard spans in trace");

    // The CLI validator agrees.
    let out = ppm(&["check-trace", "--file", trace.to_str().unwrap()]);
    assert_code(&out, 0);
    assert!(String::from_utf8_lossy(&out.stdout).contains("trace ok"));

    // And rejects a structurally broken file with a persistence error.
    let broken = dir.join("broken.json");
    std::fs::write(&broken, "{\"traceEvents\":[{\"ph\":\"X\"}]}").unwrap();
    let out = ppm(&["check-trace", "--file", broken.to_str().unwrap()]);
    assert_code(&out, 4);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn metrics_out_jsonl_matches_the_documented_schema() {
    let dir = scratch("jsonl");
    let jsonl = dir.join("m.jsonl");
    let out = ppm(&[
        "simulate",
        "--benchmark",
        "mcf",
        "--instructions",
        "20000",
        "--quiet",
        "--no-ledger",
        "--metrics-out",
        jsonl.to_str().unwrap(),
    ]);
    assert_code(&out, 0);

    let text = std::fs::read_to_string(&jsonl).unwrap();
    let mut kinds = (0, 0, 0); // spans, events, metrics
    for line in text.lines() {
        let rec = Json::parse(line).unwrap_or_else(|e| panic!("bad JSONL line {line:?}: {e}"));
        let t = rec.get("t").and_then(Json::as_str).unwrap();
        let name = rec.get("name").and_then(Json::as_str).unwrap();
        assert!(!name.is_empty());
        match t {
            "span" => {
                kinds.0 += 1;
                for key in ["us", "start_us", "tid", "depth"] {
                    assert!(
                        rec.get(key).and_then(Json::as_i64).is_some(),
                        "span line missing {key}: {line}"
                    );
                }
                // cpu_us and parent are present but may be null.
                assert!(rec.get("cpu_us").is_some(), "{line}");
                assert!(rec.get("parent").is_some(), "{line}");
            }
            "event" => {
                kinds.1 += 1;
                assert!(rec.get("fields").and_then(Json::as_obj).is_some(), "{line}");
                assert!(rec.get("depth").and_then(Json::as_i64).is_some(), "{line}");
            }
            "metric" => {
                kinds.2 += 1;
                match rec.get("kind").and_then(Json::as_str).unwrap() {
                    "counter" => {
                        assert!(rec.get("value").and_then(Json::as_i64).is_some(), "{line}");
                    }
                    "gauge" => {
                        assert!(rec.get("value").is_some(), "{line}");
                    }
                    "histogram" => {
                        for key in ["count", "sum", "min", "max", "p50", "p95", "p99"] {
                            assert!(
                                rec.get(key).and_then(Json::as_i64).is_some(),
                                "histogram line missing {key}: {line}"
                            );
                        }
                    }
                    other => panic!("unknown metric kind {other:?}: {line}"),
                }
            }
            other => panic!("unknown record type {other:?}: {line}"),
        }
    }
    assert!(kinds.0 > 0, "no span records in {text}");
    assert!(kinds.2 > 0, "no metric records in {text}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ledger_defaults_land_in_the_ledger_dir_and_no_ledger_disables() {
    let dir = scratch("default-dir");
    let runs = dir.join("runs");
    let out = ppm(&[
        "simulate",
        "--benchmark",
        "mcf",
        "--instructions",
        "20000",
        "--seed",
        "3",
        "--quiet",
        "--ledger-dir",
        runs.to_str().unwrap(),
    ]);
    assert_code(&out, 0);
    let entries: Vec<_> = std::fs::read_dir(&runs)
        .unwrap()
        .filter_map(Result::ok)
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    assert_eq!(entries.len(), 1, "{entries:?}");
    assert!(
        entries[0].starts_with("simulate-3-") && entries[0].ends_with(".json"),
        "{entries:?}"
    );
    ppm_obs::load_ledger(&runs.join(&entries[0])).unwrap();

    // --no-ledger writes nothing.
    std::fs::remove_dir_all(&runs).ok();
    let out = ppm(&[
        "simulate",
        "--benchmark",
        "mcf",
        "--instructions",
        "20000",
        "--quiet",
        "--no-ledger",
        "--ledger-dir",
        runs.to_str().unwrap(),
    ]);
    assert_code(&out, 0);
    assert!(!runs.exists());

    std::fs::remove_dir_all(&dir).ok();
}
