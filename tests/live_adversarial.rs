//! Adversarial-client tests for the live observability plane: clients
//! that overflow the event ring, slowloris a partial request head
//! against the 2-second socket budget, or send an oversized request
//! line. The accept thread must survive all of it, count the abuse in
//! `live.client_errors`, and keep answering well-behaved scrapers.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ppm_live::{http_get, LiveServer, RegistrySource};
use ppm_obs::Json;
use ppm_telemetry::{EventRing, Level, Record, Sink, Value};

const SCRAPE_TIMEOUT: Duration = Duration::from_secs(2);

fn scoped_server(capacity: usize) -> (LiveServer, Arc<ppm_telemetry::Registry>, EventRing) {
    let registry = Arc::new(ppm_telemetry::Registry::new());
    let ring = EventRing::new(capacity);
    let server = LiveServer::start(
        "127.0.0.1:0",
        RegistrySource::Shared(Arc::clone(&registry)),
        ring.clone(),
    )
    .expect("bind ephemeral port");
    (server, registry, ring)
}

fn client_errors() -> u64 {
    ppm_telemetry::registry()
        .counter("live.client_errors")
        .get()
}

/// Polls until the server answers a well-behaved request again —
/// the liveness assertion after every attack.
fn assert_still_answering(addr: &str) {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match http_get(addr, "/buildz", SCRAPE_TIMEOUT) {
            Ok((200, _)) => return,
            _ if Instant::now() > deadline => panic!("server stopped answering"),
            _ => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

#[test]
fn event_ring_overflow_drops_oldest_and_reports_the_loss() {
    let (server, _registry, ring) = scoped_server(8);
    // A chatty producer: 3x the ring's capacity.
    let mut writer = ring.clone();
    for k in 0..24u64 {
        writer.record(&Record::Event {
            name: format!("t.flood.{k}"),
            level: Level::Info,
            fields: vec![("k".into(), Value::from(k))],
            depth: 0,
        });
    }
    assert_eq!(ring.events().len(), 8, "ring holds exactly its capacity");
    assert_eq!(ring.dropped(), 16, "evictions are counted, not silent");
    // The retained window is the most recent events, oldest first.
    let names: Vec<String> = ring.events().iter().map(|e| e.name.clone()).collect();
    assert_eq!(names.first().map(String::as_str), Some("t.flood.16"));
    assert_eq!(names.last().map(String::as_str), Some("t.flood.23"));

    // /eventz serves the same truncated view and admits the loss.
    let addr = server.addr().to_string();
    let (status, body) = http_get(&addr, "/eventz", SCRAPE_TIMEOUT).expect("scrape eventz");
    assert_eq!(status, 200);
    let doc = Json::parse(&body).expect("eventz is JSON");
    assert_eq!(doc.get("dropped").and_then(Json::as_i64), Some(16));
    assert!(body.contains("t.flood.23"), "{body}");
    assert!(!body.contains("t.flood.0\""), "evicted event still served");
}

#[test]
fn slowloris_partial_head_is_cut_off_by_the_socket_budget() {
    let (server, _registry, _ring) = scoped_server(4);
    let before = client_errors();
    let started = Instant::now();
    // A partial request line, then silence: the server must not wait
    // forever for the terminator.
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream.write_all(b"GET /buildz?partial").expect("send");
    let mut response = String::new();
    let _ = stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .and_then(|()| stream.read_to_string(&mut response).map(|_| ()));
    // The 2s per-connection budget bounds the stall (plus slack for a
    // loaded machine); dropping the read is also acceptable, but a
    // best-effort 400 is what the server tries to send.
    assert!(
        started.elapsed() < Duration::from_secs(8),
        "slowloris held the connection for {:?}",
        started.elapsed()
    );
    if !response.is_empty() {
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");
    }
    assert!(client_errors() > before, "the stall was not counted");
    assert_still_answering(&server.addr().to_string());
}

#[test]
fn oversized_request_line_is_rejected_not_buffered() {
    let (server, _registry, _ring) = scoped_server(4);
    let before = client_errors();
    // 4x the 8 KiB head cap, no terminator anywhere.
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    let junk = vec![b'a'; 32 * 1024];
    // The server may close mid-write once the cap trips; a broken pipe
    // here is the defense working, not a test failure.
    let _ = stream.write_all(&junk);
    let mut response = String::new();
    let _ = stream
        .set_read_timeout(Some(SCRAPE_TIMEOUT))
        .and_then(|()| stream.read_to_string(&mut response).map(|_| ()));
    if !response.is_empty() {
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");
    }
    drop(stream);
    assert!(client_errors() > before, "oversized head was not counted");
    assert_still_answering(&server.addr().to_string());
}

#[test]
fn a_swarm_of_misbehaving_clients_cannot_stop_the_scrapes() {
    let (server, registry, _ring) = scoped_server(4);
    registry.counter("live.test_beacon").add(1);
    let addr = server.addr().to_string();
    // Interleave every attack style with healthy scrapes.
    for round in 0..6 {
        match round % 3 {
            0 => drop(TcpStream::connect(server.addr()).expect("connect")),
            1 => {
                let mut s = TcpStream::connect(server.addr()).expect("connect");
                let _ = s.write_all(b"\x00\x01\x02 junk");
            }
            _ => {
                let mut s = TcpStream::connect(server.addr()).expect("connect");
                let _ = s.write_all(b"GET /metr");
            }
        }
        let (status, body) = http_get(&addr, "/metrics", SCRAPE_TIMEOUT).expect("scrape survives");
        assert_eq!(status, 200);
        assert!(body.contains("ppm_live_test_beacon 1"), "{body}");
    }
}
