//! End-to-end tests for the live observability plane: a real `ppm
//! build --live` subprocess scraped over HTTP mid-run, `ppm top`
//! against the endpoint, and the exit-7 bind-failure contract.
//!
//! Everything here drives the actual binary (`CARGO_BIN_EXE_ppm`), so
//! the assertions cover the exact surface `scripts/verify.sh` and
//! outside scrapers see.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use ppm_live::http_get;
use ppm_obs::Json;

const SCRAPE_TIMEOUT: Duration = Duration::from_secs(2);

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ppm-live-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Kills the child on drop so a failing assertion cannot leak a
/// running build.
struct Reaped(Child);

impl Drop for Reaped {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Spawns `ppm build --live 127.0.0.1:0 ...` and returns the child
/// plus the bound address parsed from the stderr banner.
fn spawn_live_build(dir: &Path, sample: &str) -> (Reaped, String) {
    let child = Command::new(env!("CARGO_BIN_EXE_ppm"))
        .args([
            "build",
            "--benchmark",
            "ammp",
            "--sample",
            sample,
            "--instructions",
            "20000",
            "--seed",
            "7",
            "--train-threads",
            "2",
            "--holdout",
            "0",
            "--no-ledger",
            "--live",
            "127.0.0.1:0",
            "--out",
        ])
        .arg(dir.join("m.txt"))
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("ppm binary spawns");
    let mut child = Reaped(child);
    let stderr = child.0.stderr.take().expect("stderr piped");
    // The banner is the first stderr line; read just that one here and
    // drain the rest on a thread so the child never blocks on a full
    // pipe.
    let mut lines = BufReader::new(stderr).lines();
    let banner = loop {
        match lines.next() {
            Some(Ok(line)) if line.contains("live plane listening on http://") => break line,
            Some(Ok(_)) => continue,
            other => panic!("no live banner on stderr (got {other:?})"),
        }
    };
    std::thread::spawn(move || for _ in lines {});
    let addr = banner
        .rsplit("http://")
        .next()
        .expect("banner carries an address")
        .trim()
        .to_string();
    (child, addr)
}

fn buildz(addr: &str) -> Option<Json> {
    match http_get(addr, "/buildz", SCRAPE_TIMEOUT) {
        Ok((200, body)) => Json::parse(&body).ok(),
        _ => None,
    }
}

fn points_done(doc: &Json) -> u64 {
    doc.get("points")
        .and_then(|p| p.get("done"))
        .and_then(Json::as_i64)
        .unwrap_or(0) as u64
}

#[test]
fn live_build_shows_progress_between_two_scrapes() {
    let dir = scratch("progress");
    let (mut child, addr) = spawn_live_build(&dir, "40");

    // First scrape: any successful /buildz with a plan counts.
    let deadline = Instant::now() + Duration::from_secs(60);
    let first = loop {
        assert!(Instant::now() < deadline, "no scrapeable /buildz in time");
        if let Some(doc) = buildz(&addr) {
            assert_eq!(
                doc.get("schema").and_then(Json::as_str),
                Some("ppm-buildz v1")
            );
            if doc
                .get("points")
                .and_then(|p| p.get("planned"))
                .and_then(Json::as_i64)
                .unwrap_or(0)
                > 0
            {
                break points_done(&doc);
            }
        }
        std::thread::sleep(Duration::from_millis(25));
    };

    // Second scrape: points-done must increase while the build runs.
    let second = loop {
        assert!(
            Instant::now() < deadline,
            "points done never increased past {first}"
        );
        match buildz(&addr) {
            Some(doc) if points_done(&doc) > first => break points_done(&doc),
            Some(_) => std::thread::sleep(Duration::from_millis(25)),
            None => panic!("live plane went away before progress was observed"),
        }
    };
    assert!(second > first, "{second} <= {first}");

    // The Prometheus exposition serves the same counters mid-run.
    let (status, metrics) = http_get(&addr, "/metrics", SCRAPE_TIMEOUT).expect("scrape metrics");
    assert_eq!(status, 200);
    assert!(
        metrics.contains("# TYPE ppm_build_points_done counter"),
        "{metrics}"
    );
    assert!(metrics.contains("ppm_build_points_planned 40"), "{metrics}");

    // `ppm top --once` renders a frame against the same endpoint.
    let top = Command::new(env!("CARGO_BIN_EXE_ppm"))
        .args(["top", &addr, "--once"])
        .output()
        .expect("ppm top runs");
    // The build may finish while top connects; only a successful
    // connection must render.
    if top.status.success() {
        let frame = String::from_utf8_lossy(&top.stdout);
        assert!(frame.contains("ppm top —"), "{frame}");
        assert!(frame.contains("/40"), "{frame}");
    } else {
        assert_eq!(top.status.code(), Some(7));
    }

    let status = child.0.wait().expect("build finishes");
    assert!(status.success(), "build failed under --live");
}

#[test]
fn live_bind_conflict_exits_7_and_quiet_suppresses_the_banner() {
    // Occupy a port, then ask ppm to bind it.
    let taken = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = taken.local_addr().unwrap().to_string();
    let out = Command::new(env!("CARGO_BIN_EXE_ppm"))
        .args(["build", "--benchmark", "ammp", "--live", &addr, "--quiet"])
        .output()
        .expect("ppm binary runs");
    assert_eq!(
        out.status.code(),
        Some(7),
        "stderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // --quiet keeps the banner (and everything else) off stderr on a
    // successful run.
    let dir = scratch("quiet");
    let out = Command::new(env!("CARGO_BIN_EXE_ppm"))
        .args([
            "build",
            "--benchmark",
            "ammp",
            "--sample",
            "4",
            "--instructions",
            "2000",
            "--holdout",
            "0",
            "--no-ledger",
            "--quiet",
            "--live",
            "127.0.0.1:0",
            "--out",
        ])
        .arg(dir.join("m.txt"))
        .output()
        .expect("ppm binary runs");
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        !stderr.contains("live plane listening"),
        "banner despite --quiet: {stderr}"
    );
}

#[test]
fn top_against_nothing_exits_7() {
    let port = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().port()
    };
    let out = Command::new(env!("CARGO_BIN_EXE_ppm"))
        .args(["top", &format!("127.0.0.1:{port}"), "--once"])
        .output()
        .expect("ppm binary runs");
    assert_eq!(out.status.code(), Some(7));
}
