//! Integration tests pinning the paper's qualitative claims at reduced
//! scale — the same shapes the bench harnesses report at full scale.

use ppm::model::builder::{BuildConfig, RbfModelBuilder};
use ppm::model::response::{eval_batch, FnResponse, Response};
use ppm::model::space::DesignSpace;
use ppm::model::study::significant_splits;
use ppm::rng::Rng;
use ppm::sampling::lhs::LatinHypercube;
use ppm::workload::Benchmark;

/// Figure 2's shape: best-of-N L2-star discrepancy decreases with the
/// sample size and tapers.
#[test]
fn discrepancy_curve_decreases_and_tapers() {
    let space = DesignSpace::paper_table1();
    let sizes = [10usize, 30, 60, 90];
    let mut scores = Vec::new();
    for &n in &sizes {
        let mut rng = Rng::seed_from_u64(9);
        let (_, s) = LatinHypercube::new(space.params(), n)
            .best_of_with_score(24, &mut rng)
            .expect("non-zero candidates");
        scores.push(s);
    }
    for w in scores.windows(2) {
        assert!(
            w[1] < w[0],
            "discrepancy should fall monotonically: {scores:?}"
        );
    }
    let early = scores[0] - scores[1];
    let late = scores[2] - scores[3];
    assert!(early > late, "no knee in the curve: {scores:?}");
}

/// Figure 4's shape: model error falls as the sample grows (analytic
/// response for speed; the simulator-backed version is the bench
/// harness).
#[test]
fn error_decreases_with_sample_size() {
    let space = DesignSpace::paper_table1();
    let response = FnResponse::new(9, |x| {
        1.0 + x[0] + 0.8 * (2.5 * x[4]).sin() + x[5] * x[5] + 0.4 * x[5] * x[6]
    })
    .expect("non-zero dimension");
    let probe = RbfModelBuilder::new(space.clone(), BuildConfig::quick(20));
    let test = probe.test_points(&DesignSpace::paper_table2(), 40);
    let actual: Vec<f64> = test.iter().map(|p| response.eval(p)).collect();

    let mut errors = Vec::new();
    for n in [20usize, 60, 140] {
        let builder = RbfModelBuilder::new(space.clone(), BuildConfig::quick(n));
        let built = builder.build(&response).expect("finite responses");
        errors.push(built.evaluate(&test, &actual).mean_pct);
    }
    assert!(
        errors[2] < errors[0],
        "error did not fall with sample size: {errors:?}"
    );
}

/// Table 4's shape: the number of selected centers stays well below the
/// number of sample points.
#[test]
fn centers_are_much_fewer_than_samples() {
    let space = DesignSpace::paper_table1();
    let response = ppm::model::SimulatorResponse::new(Benchmark::Parser, 30_000);
    let builder = RbfModelBuilder::new(space, BuildConfig::quick(50));
    let built = builder.build(&response).expect("finite CPI responses");
    let centers = built.model.network.num_centers();
    assert!(
        centers * 2 < 50 + 10,
        "selection kept {centers} of 50 points — not a compact model"
    );
}

/// Table 5's shape: mcf's most significant splits are memory-system
/// parameters.
#[test]
fn mcf_splits_on_memory_parameters() {
    let space = DesignSpace::paper_table1();
    let response = ppm::model::SimulatorResponse::new(Benchmark::Mcf, 40_000);
    let builder = RbfModelBuilder::new(space.clone(), BuildConfig::quick(60));
    let (design, _) = builder.select_sample().expect("valid sweep config");
    let responses = eval_batch(&response, &design, 1).expect("clean batch");
    let splits = significant_splits(&space, &design, &responses, 1, 6).expect("valid");
    let memory = ["L2_lat", "L2_size", "dl1_lat", "dl1_size"];
    // Our mcf surrogate is more window-sensitive than the paper's (see
    // EXPERIMENTS.md), so we require memory parameters to be prominent
    // rather than to occupy every top slot.
    let hits = splits.iter().filter(|s| memory.contains(&s.param)).count();
    assert!(
        hits >= 1,
        "mcf's significant splits should feature memory parameters, got {:?}",
        splits.iter().map(|s| s.param).collect::<Vec<_>>()
    );
    // The memory system's latency must rank above front-end parameters.
    let l2_rank = splits.iter().position(|s| s.param == "L2_lat");
    let depth_rank = splits.iter().position(|s| s.param == "pipe_depth");
    if let (Some(l2), Some(depth)) = (l2_rank, depth_rank) {
        assert!(
            l2 < depth,
            "L2 latency should outrank pipeline depth for mcf"
        );
    }
}

/// Figure 6's shape: the model and the simulator agree on the direction
/// of the il1 x L2-lat interaction for vortex.
#[test]
fn model_and_simulator_agree_on_trend_direction() {
    let space = DesignSpace::paper_table1();
    let response = ppm::model::SimulatorResponse::new(Benchmark::Vortex, 40_000);
    let builder = RbfModelBuilder::new(space.clone(), BuildConfig::quick(50));
    let built = builder.build(&response).expect("finite CPI responses");

    let mut worst = [0.5; 9];
    worst[6] = 0.0; // 8 KB il1
    worst[5] = 0.0; // 20-cycle L2
    let mut best = [0.5; 9];
    best[6] = 1.0;
    best[5] = 1.0;
    let sim_gap = response.eval(&worst) - response.eval(&best);
    let model_gap = built.predict(&worst) - built.predict(&best);
    assert!(sim_gap > 0.0, "simulator trend inverted");
    assert!(model_gap > 0.0, "model trend inverted");
    // Magnitudes within a factor of two of each other.
    let ratio = model_gap / sim_gap;
    assert!(
        (0.5..2.0).contains(&ratio),
        "trend magnitude off: model {model_gap:.3} vs sim {sim_gap:.3}"
    );
}
