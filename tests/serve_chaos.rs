//! The chaos acceptance test for the serving plane: a real `ppm serve`
//! subprocess under seeded fault injection (`--chaos`) and concurrent
//! load. The contract under fire:
//!
//! * the process never crashes;
//! * every accepted request is answered before its deadline or refused
//!   with an explicit 503 — never silently dropped, never answered late;
//! * degraded responses are flagged (`"degraded": true`) and counted
//!   (`serve.degraded`);
//! * a hot reload of a corrupt model rolls back to the last-known-good
//!   version with zero failed predictions.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use ppm_live::http_get;
use ppm_obs::Json;

/// Generous socket budget: under chaos the service may shed or 503, but
/// it must always *answer* well inside this window (server-side I/O
/// budget is 2s, the default deadline 250ms).
const CLIENT_TIMEOUT: Duration = Duration::from_secs(10);

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ppm-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Kills the child on drop so a failing assertion cannot leak a
/// running service.
struct Reaped(Child);

impl Drop for Reaped {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Builds a small real RBF model and publishes it into `registry`,
/// returning the content-hash version `ppm publish` reported.
fn build_and_publish(dir: &Path, registry: &Path) -> String {
    let model = dir.join("model.txt");
    let out = Command::new(env!("CARGO_BIN_EXE_ppm"))
        .args([
            "build",
            "--benchmark",
            "ammp",
            "--sample",
            "16",
            "--instructions",
            "8000",
            "--seed",
            "7",
            "--holdout",
            "0",
            "--no-ledger",
            "--quiet",
            "--train-threads",
            "2",
            "--out",
        ])
        .arg(&model)
        .output()
        .expect("ppm build runs");
    assert!(
        out.status.success(),
        "build failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = Command::new(env!("CARGO_BIN_EXE_ppm"))
        .args(["publish", "--model"])
        .arg(&model)
        .arg("--registry")
        .arg(registry)
        .output()
        .expect("ppm publish runs");
    assert!(
        out.status.success(),
        "publish failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    stdout
        .rsplit("as version ")
        .next()
        .expect("publish names the version")
        .trim()
        .to_string()
}

/// Spawns `ppm serve 127.0.0.1:0 --chaos <seed>` and returns the child
/// plus the bound address parsed from the stderr banner.
fn spawn_chaos_serve(registry: &Path) -> (Reaped, String) {
    let child = Command::new(env!("CARGO_BIN_EXE_ppm"))
        .args([
            "serve",
            "127.0.0.1:0",
            "--chaos",
            "7",
            "--workers",
            "4",
            "--queue",
            "8",
            "--deadline-ms",
            "250",
            "--registry",
        ])
        .arg(registry)
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("ppm binary spawns");
    let mut child = Reaped(child);
    let stderr = child.0.stderr.take().expect("stderr piped");
    let mut lines = BufReader::new(stderr).lines();
    let banner = loop {
        match lines.next() {
            Some(Ok(line)) if line.contains("[ppm serve] listening on http://") => break line,
            Some(Ok(_)) => continue,
            other => panic!("no serve banner on stderr (got {other:?})"),
        }
    };
    // Drain the rest on a thread so the child never blocks on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    let addr = banner
        .rsplit("http://")
        .next()
        .expect("banner carries an address")
        .trim()
        .to_string();
    (child, addr)
}

/// Tallies from one load wave. `transport` counts requests that never
/// got an HTTP response (connect refused/timed out) — under chaos the
/// kernel listen queue can bounce a connect, but an *accepted* request
/// must always be answered.
#[derive(Default)]
struct Wave {
    ok: AtomicU64,
    degraded: AtomicU64,
    refused_503: AtomicU64,
    transport: AtomicU64,
}

/// Fires `threads * per_thread` concurrent predictions and asserts the
/// response contract on every one: 200 with a finite prediction inside
/// the deadline, or an explicit 503.
fn load_wave(addr: &str, threads: usize, per_thread: usize, expect_version: &str) -> Wave {
    let wave = Wave::default();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let wave = &wave;
            scope.spawn(move || {
                for k in 0..per_thread {
                    let rob = [32, 48, 64, 96, 128, 160, 192, 256][(t + k) % 8];
                    let path = format!("/predict?rob={rob}");
                    match http_get(addr, &path, CLIENT_TIMEOUT) {
                        Ok((200, body)) => {
                            let doc = Json::parse(&body).expect("200 bodies are JSON");
                            let p = doc
                                .get("prediction")
                                .and_then(Json::as_f64)
                                .expect("200 bodies carry a prediction");
                            assert!(p.is_finite() && p > 0.0, "prediction {p} in {body}");
                            let deadline_ms =
                                doc.get("deadline_ms").and_then(Json::as_i64).unwrap();
                            let elapsed_ms = doc.get("elapsed_ms").and_then(Json::as_i64).unwrap();
                            // The deadline gate runs just before the body
                            // is serialized; allow a small scheduling skew
                            // between the gate and the elapsed_ms stamp.
                            assert!(
                                elapsed_ms <= deadline_ms + 50,
                                "late answer: {elapsed_ms}ms against {deadline_ms}ms"
                            );
                            let version = doc.get("model_version").and_then(Json::as_str).unwrap();
                            let degraded = doc.get("degraded").and_then(Json::as_bool).unwrap();
                            if degraded {
                                wave.degraded.fetch_add(1, Ordering::Relaxed);
                            } else {
                                assert_eq!(
                                    version, expect_version,
                                    "full-fidelity answer from the wrong model"
                                );
                            }
                            wave.ok.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok((503, _)) => {
                            wave.refused_503.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok((status, body)) => panic!("unexpected {status}: {body}"),
                        Err(_) => {
                            wave.transport.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    wave
}

fn counter_from_statusz(addr: &str, key: &str) -> i64 {
    let (status, body) = http_get(addr, "/statusz", CLIENT_TIMEOUT).expect("statusz answers");
    assert_eq!(status, 200, "{body}");
    Json::parse(&body)
        .expect("statusz is JSON")
        .get(key)
        .and_then(Json::as_i64)
        .unwrap_or_else(|| panic!("statusz has no {key}"))
}

#[test]
fn chaos_serve_survives_load_degrades_gracefully_and_rolls_back() {
    let dir = scratch("acceptance");
    let registry = dir.join("registry");
    let version = build_and_publish(&dir, &registry);
    let (mut child, addr) = spawn_chaos_serve(&registry);

    // Wave 1: concurrent load against the chaos-injected service.
    let wave = load_wave(&addr, 8, 50, &version);
    let sent = 8 * 50;
    let ok = wave.ok.load(Ordering::Relaxed);
    let refused = wave.refused_503.load(Ordering::Relaxed);
    let transport = wave.transport.load(Ordering::Relaxed);
    assert_eq!(
        ok + refused + transport,
        sent,
        "every request lands in exactly one bucket"
    );
    assert!(ok > 0, "no successful predictions under chaos");
    assert!(
        transport < sent / 4,
        "{transport}/{sent} requests never got an HTTP response"
    );
    // ~6% of evaluations fault (panic or NaN) under seed 7; each one
    // must surface as a flagged, analytically-served answer.
    assert!(
        wave.degraded.load(Ordering::Relaxed) > 0,
        "chaos faults never produced a degraded response"
    );
    assert!(
        counter_from_statusz(&addr, "degraded") > 0,
        "serve.degraded never incremented"
    );
    assert!(counter_from_statusz(&addr, "model_failures") > 0);

    // The Prometheus exposition carries the same counters.
    let (status, metrics) = http_get(&addr, "/metrics", CLIENT_TIMEOUT).unwrap();
    assert_eq!(status, 200);
    assert!(metrics.contains("ppm_serve_degraded"), "{metrics}");

    // The process is still alive after the storm.
    assert!(
        child.0.try_wait().expect("try_wait works").is_none(),
        "serve process died under chaos"
    );

    // Corrupt hot reload: point CURRENT at a garbage version. The
    // reload must be refused (409), the old model must keep serving,
    // and not one prediction may fail because of the attempt.
    std::fs::write(registry.join("deadbeef.model"), "not a model\n").unwrap();
    std::fs::write(registry.join("CURRENT"), "deadbeef\n").unwrap();
    let (status, body) =
        ppm_live::http_post(&addr, "/reloadz", CLIENT_TIMEOUT).expect("reloadz answers");
    assert_eq!(status, 409, "{body}");
    let doc = Json::parse(&body).unwrap();
    assert_eq!(
        doc.get("version").and_then(Json::as_str),
        Some(version.as_str()),
        "rollback keeps the last-known-good version"
    );
    assert!(counter_from_statusz(&addr, "reload_failures") >= 1);

    // Wave 2: the service still answers from the original model.
    let wave = load_wave(&addr, 2, 10, &version);
    assert!(
        wave.ok.load(Ordering::Relaxed) > 0,
        "no predictions after the failed reload"
    );

    // Restore CURRENT and reload: back to a clean swap (unchanged).
    std::fs::write(registry.join("CURRENT"), format!("{version}\n")).unwrap();
    let (status, body) = ppm_live::http_post(&addr, "/reloadz", CLIENT_TIMEOUT).unwrap();
    assert_eq!(status, 200, "{body}");

    // Clean shutdown through the control surface: exit code 0.
    let (status, _) = ppm_live::http_post(&addr, "/quitz", CLIENT_TIMEOUT).unwrap();
    assert_eq!(status, 200);
    let exit = child.0.wait().expect("serve exits");
    assert!(exit.success(), "serve exited {exit:?}");
}

#[test]
fn serve_without_a_model_or_fallback_exits_8() {
    let dir = scratch("exit8");
    let out = Command::new(env!("CARGO_BIN_EXE_ppm"))
        .args(["serve", "127.0.0.1:0", "--registry"])
        .arg(dir.join("empty-registry"))
        .output()
        .expect("ppm binary runs");
    assert_eq!(
        out.status.code(),
        Some(8),
        "stderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
}
