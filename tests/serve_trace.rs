//! Acceptance tests for the request-observability layer (`ppm-trace`):
//! a serving plane under seeded chaos and 8-thread concurrent load
//! must account for every failure it hands out.
//!
//! The contract:
//!
//! * every response echoes the client's `X-Ppm-Trace` ID (or a
//!   seq-derived one for sheds, whose head is never read);
//! * every non-2xx response and every degraded/panic-contained answer
//!   has a retained `/tracez` record with a full span timeline ending
//!   in the terminal `write` span — the tail sampler may drop plain OK
//!   traffic, never errors;
//! * `/tracez?format=chrome` exports a loadable Chrome-trace document;
//! * the SLO tracker, labeled shed/degrade series, and exemplars all
//!   surface on `/statusz` and `/metrics`;
//! * `ppm tail --once` renders the feed, and exits 8 when tracing is
//!   off.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::Mutex;
use std::time::Duration;

use ppm_live::{http_get, http_request_full};
use ppm_obs::Json;
use ppm_serve::{ServeConfig, ServeServer};
use ppm_workload::Benchmark;

const CLIENT_TIMEOUT: Duration = Duration::from_secs(10);

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ppm-trace-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Builds a small real RBF model and publishes it into `registry`.
fn build_and_publish(dir: &Path, registry: &Path) {
    let model = dir.join("model.txt");
    let out = Command::new(env!("CARGO_BIN_EXE_ppm"))
        .args([
            "build",
            "--benchmark",
            "ammp",
            "--sample",
            "16",
            "--instructions",
            "8000",
            "--seed",
            "7",
            "--holdout",
            "0",
            "--no-ledger",
            "--quiet",
            "--train-threads",
            "2",
            "--out",
        ])
        .arg(&model)
        .output()
        .expect("ppm build runs");
    assert!(
        out.status.success(),
        "build failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = Command::new(env!("CARGO_BIN_EXE_ppm"))
        .args(["publish", "--model"])
        .arg(&model)
        .arg("--registry")
        .arg(registry)
        .output()
        .expect("ppm publish runs");
    assert!(
        out.status.success(),
        "publish failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// What one client request observed, keyed by the trace ID it sent.
#[derive(Debug, Clone)]
struct Seen {
    status: u16,
    body: String,
    echoed: Option<String>,
}

/// Fires `threads * per_thread` predictions with client-chosen trace
/// IDs (`st-<t>-<k>`) and a tight 25ms deadline, so chaos slow faults
/// (40ms) surface as deadline refusals.
fn trace_wave(addr: &str, threads: usize, per_thread: usize) -> HashMap<String, Seen> {
    let seen: Mutex<HashMap<String, Seen>> = Mutex::new(HashMap::new());
    std::thread::scope(|scope| {
        for t in 0..threads {
            let seen = &seen;
            scope.spawn(move || {
                for k in 0..per_thread {
                    let rob = [32, 48, 64, 96, 128, 160, 192, 256][(t + k) % 8];
                    let id = format!("st-{t}-{k}");
                    let path = format!("/predict?rob={rob}&deadline_ms=25");
                    let response = http_request_full(
                        addr,
                        "GET",
                        &path,
                        &[("X-Ppm-Trace", &id)],
                        CLIENT_TIMEOUT,
                    );
                    if let Ok(r) = response {
                        seen.lock().unwrap().insert(
                            id,
                            Seen {
                                status: r.status,
                                echoed: r.header("x-ppm-trace").map(str::to_string),
                                body: r.body,
                            },
                        );
                    }
                    // Transport failures are invisible to both sides'
                    // books; the accounting claims below are about
                    // requests that produced an HTTP response.
                }
            });
        }
    });
    seen.into_inner().unwrap()
}

fn fetch_json(addr: &str, path: &str) -> Json {
    let (status, body) = http_get(addr, path, CLIENT_TIMEOUT).expect("endpoint answers");
    assert_eq!(status, 200, "GET {path}: {body}");
    Json::parse(&body).unwrap_or_else(|e| panic!("GET {path} is not JSON ({e}): {body}"))
}

/// All retained records with the test's ID prefix, keyed by ID.
fn tracez_records(addr: &str) -> HashMap<String, Json> {
    let doc = fetch_json(addr, "/tracez?id_prefix=st-&limit=4096");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("ppm-tracez v1")
    );
    assert_eq!(doc.get("enabled").and_then(Json::as_bool), Some(true));
    doc.get("records")
        .and_then(Json::as_arr)
        .unwrap_or(&[])
        .iter()
        .map(|r| {
            (
                r.get("id").and_then(Json::as_str).unwrap().to_string(),
                r.clone(),
            )
        })
        .collect()
}

fn span_names(record: &Json) -> Vec<String> {
    record
        .get("spans")
        .and_then(Json::as_arr)
        .unwrap_or(&[])
        .iter()
        .map(|s| s.get("name").and_then(Json::as_str).unwrap().to_string())
        .collect()
}

#[test]
fn chaos_wave_accounts_for_every_failure() {
    let dir = scratch("chaos");
    let registry = dir.join("registry");
    build_and_publish(&dir, &registry);
    let server = ServeServer::start(ServeConfig {
        registry,
        fallback_benchmark: Some(Benchmark::Ammp),
        chaos: Some(6),
        workers: 4,
        queue_per_worker: 8,
        ..ServeConfig::default()
    })
    .expect("server starts");
    let addr = server.addr().to_string();

    let seen = trace_wave(&addr, 8, 40);
    assert!(seen.len() >= 300, "only {} answers landed", seen.len());

    // Every answered request echoed a trace ID; 200s echo the
    // client's own (sheds never read the head, so theirs is
    // seq-derived).
    let mut deadline_503 = 0u64;
    let mut shed_503 = 0u64;
    let mut degraded_200 = Vec::new();
    let mut panicked_200 = Vec::new();
    for (id, s) in &seen {
        assert!(
            s.echoed.is_some(),
            "{id}: response without X-Ppm-Trace header (status {})",
            s.status
        );
        match s.status {
            200 => {
                let doc = Json::parse(&s.body).expect("200 bodies are JSON");
                assert_eq!(
                    doc.get("trace_id").and_then(Json::as_str),
                    Some(id.as_str()),
                    "200 body carries the client's trace ID"
                );
                assert_eq!(s.echoed.as_deref(), Some(id.as_str()));
                if doc.get("degraded").and_then(Json::as_bool) == Some(true) {
                    let reason = doc
                        .get("degraded_reason")
                        .and_then(Json::as_str)
                        .unwrap_or("")
                        .to_string();
                    if reason.contains("panicked") {
                        panicked_200.push(id.clone());
                    } else {
                        degraded_200.push(id.clone());
                    }
                }
            }
            503 => {
                if s.body.contains("deadline") {
                    assert_eq!(s.echoed.as_deref(), Some(id.as_str()));
                    deadline_503 += 1;
                } else {
                    shed_503 += 1;
                }
            }
            other => panic!("{id}: unexpected status {other}: {}", s.body),
        }
    }
    // Seed 6 injects panic, NaN, and slow faults in this index range;
    // with a 25ms deadline the 40ms slow faults become deadline
    // refusals.
    assert!(deadline_503 > 0, "no deadline refusals under chaos");
    assert!(!panicked_200.is_empty(), "no panic-contained answers");
    assert!(!degraded_200.is_empty(), "no degraded answers");

    // The books: every failure retrievable from /tracez.
    std::thread::sleep(Duration::from_millis(100)); // records land after the response write
    let records = tracez_records(&addr);
    for (id, s) in &seen {
        if s.status == 503 && s.body.contains("deadline") {
            let rec = records
                .get(id)
                .unwrap_or_else(|| panic!("deadline refusal {id} lost from the ring"));
            assert_eq!(
                rec.get("outcome").and_then(Json::as_str),
                Some("deadline_expired")
            );
            assert_eq!(rec.get("status").and_then(Json::as_i64), Some(503));
            let spans = span_names(rec);
            assert_eq!(
                spans.last().map(String::as_str),
                Some("write"),
                "{id}: timeline must end in the terminal write span ({spans:?})"
            );
            assert!(spans.contains(&"queue_wait".to_string()), "{spans:?}");
            assert!(spans.contains(&"eval".to_string()), "{spans:?}");
        }
    }
    for id in &panicked_200 {
        let rec = records
            .get(id)
            .unwrap_or_else(|| panic!("panic-contained {id} lost from the ring"));
        assert_eq!(
            rec.get("outcome").and_then(Json::as_str),
            Some("panic_contained"),
            "{rec:?}"
        );
        assert!(
            rec.get("worker").and_then(Json::as_i64).is_some(),
            "panic-contained answers know their worker: {rec:?}"
        );
    }
    for id in &degraded_200 {
        let rec = records
            .get(id)
            .unwrap_or_else(|| panic!("degraded answer {id} lost from the ring"));
        assert_eq!(rec.get("outcome").and_then(Json::as_str), Some("degraded"));
    }
    // Sheds keep seq-derived IDs (head unread), so the invariant is a
    // count: one retained shed record per client-observed shed.
    let shed_doc = fetch_json(&addr, "/tracez?outcome=shed&limit=4096");
    let shed_records = shed_doc
        .get("records")
        .and_then(Json::as_arr)
        .unwrap_or(&[])
        .len() as u64;
    assert_eq!(
        shed_records, shed_503,
        "every shed must be retained (client saw {shed_503})"
    );

    // Outcome and latency filters compose.
    let doc = fetch_json(&addr, "/tracez?outcome=deadline_expired&min_ms=1");
    for r in doc.get("records").and_then(Json::as_arr).unwrap_or(&[]) {
        assert_eq!(
            r.get("outcome").and_then(Json::as_str),
            Some("deadline_expired")
        );
        assert!(r.get("total_us").and_then(Json::as_i64).unwrap() >= 1000);
    }

    // Chrome export is Perfetto-loadable.
    let (status, chrome) = http_get(
        &addr,
        "/tracez?outcome=deadline_expired&format=chrome",
        CLIENT_TIMEOUT,
    )
    .expect("chrome export answers");
    assert_eq!(status, 200);
    let summary = ppm_obs::validate_chrome_trace(&chrome).expect("chrome trace validates");
    assert!(summary.spans > 0);

    // /statusz: SLO windows, reason breakdowns, trace occupancy.
    let statusz = fetch_json(&addr, "/statusz");
    let slo = statusz.get("slo").expect("statusz has slo");
    let windows = slo.get("windows").and_then(Json::as_arr).expect("windows");
    assert_eq!(windows.len(), 3);
    assert_eq!(
        windows[0].get("window_s").and_then(Json::as_i64),
        Some(5),
        "{windows:?}"
    );
    // The wave just ran: the 5-minute window saw it, and the deadline
    // refusals burned availability budget.
    assert!(windows[2].get("total").and_then(Json::as_i64).unwrap() > 0);
    assert!(
        slo.get("availability_budget_remaining")
            .and_then(Json::as_f64)
            .is_some(),
        "{slo:?}"
    );
    let degraded_by_reason = statusz.get("degraded_by_reason").expect("breakdown");
    assert!(
        degraded_by_reason
            .get("eval_failure")
            .and_then(Json::as_i64)
            .unwrap()
            > 0,
        "{degraded_by_reason:?}"
    );
    let trace = statusz.get("trace").expect("statusz has trace");
    assert_eq!(trace.get("enabled").and_then(Json::as_bool), Some(true));
    assert!(trace.get("retained").and_then(Json::as_i64).unwrap() > 0);

    // /metrics: labeled series under one family, SLO gauges, trace
    // counters, and a worst-request exemplar for the latency histogram.
    let (status, metrics) = http_get(&addr, "/metrics", CLIENT_TIMEOUT).unwrap();
    assert_eq!(status, 200);
    assert!(
        metrics.contains("ppm_serve_degraded{reason=\"eval_failure\"}"),
        "labeled degrade series missing:\n{metrics}"
    );
    assert!(
        metrics.contains("ppm_serve_shed{reason=\"deadline\"}"),
        "labeled shed series missing:\n{metrics}"
    );
    assert!(metrics.contains("ppm_serve_trace_retained"), "{metrics}");
    assert!(
        metrics.contains("ppm_serve_slo_availability_burn_5s"),
        "{metrics}"
    );
    assert!(
        metrics.contains("# EXEMPLAR ppm_serve_latency_us trace_id=\"st-"),
        "latency exemplar missing:\n{metrics}"
    );

    // `ppm tail --once` renders the feed from outside the process.
    let out = Command::new(env!("CARGO_BIN_EXE_ppm"))
        .args(["tail", &addr, "--once", "--outcome", "deadline_expired"])
        .output()
        .expect("ppm tail runs");
    assert!(
        out.status.success(),
        "tail failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("trace_id"), "{stdout}");
    assert!(stdout.contains("deadline_expired"), "{stdout}");
    assert!(stdout.contains("st-"), "{stdout}");
}

#[test]
fn disabled_tracing_answers_tracez_honestly_and_tail_exits_8() {
    let dir = scratch("notrace");
    let server = ServeServer::start(ServeConfig {
        registry: dir.join("registry"),
        fallback_benchmark: Some(Benchmark::Ammp),
        trace: false,
        ..ServeConfig::default()
    })
    .expect("server starts");
    let addr = server.addr().to_string();
    let (_, _) = http_get(&addr, "/predict?rob=64", CLIENT_TIMEOUT).expect("predict answers");
    let doc = fetch_json(&addr, "/tracez");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("ppm-tracez v1")
    );
    assert_eq!(doc.get("enabled").and_then(Json::as_bool), Some(false));

    let out = Command::new(env!("CARGO_BIN_EXE_ppm"))
        .args(["tail", &addr, "--once"])
        .output()
        .expect("ppm tail runs");
    assert_eq!(
        out.status.code(),
        Some(8),
        "tail against disabled tracing must exit 8:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// The 8-way sharded ring under 8 concurrent writers and a live
/// `/tracez` reader: no unconditional-keep outcome may be lost or
/// duplicated, snapshots stay seq-sorted mid-flight, and the shard
/// accounting stays coherent once the writers drain.
#[test]
fn trace_ring_concurrent_writers_lose_no_unconditional_keeps() {
    use ppm_serve::{SpanRec, TraceConfig, TraceFilter, TraceOutcome, TraceRecord, TraceRing};

    const WRITERS: u64 = 8;
    const PER_WRITER: u64 = 100;

    fn rec(seq: u64, outcome: TraceOutcome) -> TraceRecord {
        TraceRecord {
            id: format!("stress-{seq:06x}"),
            seq,
            route: "/predict".to_string(),
            outcome,
            status: if outcome == TraceOutcome::Shed {
                503
            } else {
                200
            },
            detail: String::new(),
            worker: Some((seq % WRITERS) as usize),
            total_us: 50 + seq % 17,
            spans: vec![SpanRec {
                name: "write",
                start_us: 0,
                dur_us: 10,
            }],
            unix_ms: 0,
        }
    }

    let ring = TraceRing::new(TraceConfig {
        capacity: 1024,
        sample_one_in: 2,
        slow_keep: 4,
    });
    let shed_filter = || TraceFilter {
        outcome: Some(TraceOutcome::Shed),
        ..TraceFilter::default()
    };

    std::thread::scope(|scope| {
        for t in 0..WRITERS {
            let ring = &ring;
            scope.spawn(move || {
                for i in 0..PER_WRITER {
                    // Writer t owns the seqs congruent to t mod 8, so
                    // each writer lands on one shard and stays under
                    // the per-shard cap: nothing can be evicted.
                    let seq = t + i * WRITERS;
                    let outcome = if i % 3 == 0 {
                        TraceOutcome::Shed
                    } else {
                        TraceOutcome::Ok
                    };
                    ring.offer(rec(seq, outcome));
                }
            });
        }
        // A reader racing the writers: every mid-flight document must
        // be well-formed and every shed snapshot strictly seq-sorted.
        let ring = &ring;
        scope.spawn(move || {
            for _ in 0..50 {
                let doc = ring.render_tracez(&TraceFilter::default());
                let parsed = Json::parse(&doc).expect("tracez parses mid-flight");
                assert_eq!(
                    parsed.get("schema").and_then(Json::as_str),
                    Some("ppm-tracez v1")
                );
                let shed = ring.snapshot(&shed_filter());
                assert!(
                    shed.windows(2).all(|w| w[0].seq < w[1].seq),
                    "snapshot not seq-sorted"
                );
                std::thread::yield_now();
            }
        });
    });

    // Every unconditional-keep record survived, exactly once.
    let got: Vec<u64> = ring
        .snapshot(&shed_filter())
        .iter()
        .map(|r| r.seq)
        .collect();
    let mut want: Vec<u64> = (0..WRITERS)
        .flat_map(|t| {
            (0..PER_WRITER)
                .filter(|i| i % 3 == 0)
                .map(move |i| t + i * WRITERS)
        })
        .collect();
    want.sort_unstable();
    assert_eq!(got, want);

    // Shard accounting is coherent after the dust settles: the per-shard
    // sums agree with an unfiltered snapshot, and nothing was evicted
    // (each shard saw at most 100 records against a cap of 128).
    assert_eq!(ring.capacity(), 1024);
    assert_eq!(ring.len(), ring.snapshot(&TraceFilter::default()).len());
    assert!(
        ring.len() >= want.len(),
        "kept {} < {}",
        ring.len(),
        want.len()
    );
}
