//! Acceptance tests for batched multi-config simulation.
//!
//! The batched engine's whole contract is *byte-identical* statistics:
//! `BatchProcessor` must produce exactly the `SimStats` that N serial
//! `Processor` runs would, for any lane count, any workload profile,
//! and any valid configuration mix — sharing the trace pass is an
//! execution strategy, never a semantic change. These tests sweep that
//! contract across every benchmark surrogate and random design points,
//! and pin the CLI surfaces that ride on it: `ppm simulate --batch`
//! cross-checks lanes against serial runs, and the loadtest SLO gate
//! refuses to pass vacuously against a shed-everything service (a storm
//! of fast 503s is not a met latency objective).

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use ppm_core::space::DesignSpace;
use ppm_rng::Rng;
use ppm_sim::{BatchProcessor, Processor, SimConfig};
use ppm_workload::{Benchmark, TraceGenerator};

const TRACE_LEN: usize = 12_000;

/// A random unit point in the 9-dimensional Table 1 space.
fn random_unit(rng: &mut Rng, dim: usize) -> Vec<f64> {
    (0..dim).map(|_| rng.unit_f64()).collect()
}

/// Serial reference: one `Processor` per configuration, regenerating
/// the trace each time, exactly as `SimulatorResponse::eval` does.
fn serial_stats(configs: &[SimConfig], bench: Benchmark, seed: u64) -> Vec<ppm_sim::SimStats> {
    configs
        .iter()
        .map(|c| Processor::new(c.clone()).run(TraceGenerator::new(bench, seed).take(TRACE_LEN)))
        .collect()
}

#[test]
fn batched_stats_are_byte_identical_across_all_profiles_and_lane_counts() {
    let space = DesignSpace::paper_table1();
    let mut rng = Rng::seed_from_u64(0xBA7C4);
    for (b, &bench) in Benchmark::all().iter().enumerate() {
        let seed = 1 + b as u64;
        let configs: Vec<SimConfig> = (0..8)
            .map(|_| space.to_config(&random_unit(&mut rng, space.dim())))
            .collect();
        let serial = serial_stats(&configs, bench, seed);
        for lanes in [1usize, 2, 8] {
            let batch = BatchProcessor::new(configs[..lanes].to_vec()).unwrap();
            let batched = batch.run(TraceGenerator::new(bench, seed).take(TRACE_LEN));
            assert_eq!(batched.len(), lanes);
            for (lane, (got, want)) in batched.iter().zip(&serial[..lanes]).enumerate() {
                assert_eq!(
                    got, want,
                    "{bench} lane {lane} of {lanes} diverged from serial \
                     (config {:?})",
                    configs[lane]
                );
            }
        }
    }
}

#[test]
fn batch_handles_duplicate_and_extreme_configs() {
    let space = DesignSpace::paper_table1();
    // Corners of the space plus a duplicated mid-point: duplicate lanes
    // must not share or interfere with each other's state.
    let mid = space.to_config(&[0.5; 9]);
    let configs = vec![
        space.to_config(&[0.0; 9]),
        space.to_config(&[1.0; 9]),
        mid.clone(),
        mid,
    ];
    let serial = serial_stats(&configs, Benchmark::Twolf, 3);
    let batched = BatchProcessor::new(configs)
        .unwrap()
        .run(TraceGenerator::new(Benchmark::Twolf, 3).take(TRACE_LEN));
    assert_eq!(batched, serial);
    assert_eq!(batched[2], batched[3], "identical lanes, identical stats");
}

#[test]
fn simulate_batch_cli_reports_identical_lanes() {
    let out = Command::new(env!("CARGO_BIN_EXE_ppm"))
        .args([
            "simulate",
            "--benchmark",
            "mcf",
            "--batch",
            "3",
            "--instructions",
            "20000",
            "--no-ledger",
            "--quiet",
        ])
        .output()
        .expect("ppm simulate --batch runs");
    assert!(
        out.status.success(),
        "simulate --batch failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("lanes          3"), "{stdout}");
    // One cross-checked row per lane.
    assert_eq!(stdout.matches("yes").count(), 3, "{stdout}");
    assert!(stdout.contains("wall"), "{stdout}");
}

/// Kills the serve child on drop so a failing assertion cannot leak a
/// running service.
struct Reaped(Child);

impl Drop for Reaped {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Spawns a shed-everything service (`--queue 0`) and returns the child
/// plus its bound address, parsed from the stderr banner.
fn spawn_shed_all_serve() -> (Reaped, String) {
    let registry = std::env::temp_dir()
        .join(format!("ppm-simbatch-shed-{}", std::process::id()))
        .join("registry");
    let child = Command::new(env!("CARGO_BIN_EXE_ppm"))
        .args([
            "serve",
            "127.0.0.1:0",
            "--queue",
            "0",
            "--benchmark",
            "ammp",
            "--registry",
        ])
        .arg(&registry)
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("ppm serve spawns");
    let mut child = Reaped(child);
    let stderr = child.0.stderr.take().expect("stderr piped");
    let lines = BufReader::new(stderr).lines();
    // Skip warnings (e.g. the analytical-only registry notice) until
    // the listening banner names the bound address.
    for line in lines {
        let line = line.expect("stderr reads");
        if let Some(addr) = line.strip_prefix("[ppm serve] listening on http://") {
            return (child, addr.trim().to_string());
        }
    }
    panic!("serve never printed its listening banner");
}

#[test]
fn slo_gate_fails_loud_against_a_fully_shedding_service() {
    let (_serve, addr) = spawn_shed_all_serve();
    // Give the accept loop a beat to come up.
    std::thread::sleep(Duration::from_millis(50));
    let out = Command::new(env!("CARGO_BIN_EXE_ppm"))
        .args([
            "loadtest",
            &addr,
            "--requests",
            "20",
            "--concurrency",
            "2",
            "--slo-p99-ms",
            "1000",
            "--no-ledger",
            "--quiet",
        ])
        .output()
        .expect("ppm loadtest runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    // Every request is refused fast — well under the 1000ms SLO — and
    // that must FAIL the gate (exit 5), not pass it with p99 = 0 ms.
    assert_eq!(
        out.status.code(),
        Some(5),
        "stdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(
        stderr.contains("no evidence") && stderr.contains("0 of 20"),
        "the refusal must say why:\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    // The report still separates refusal latency from (absent) OK
    // latency instead of blending them.
    assert!(stdout.contains("refusal latency"), "{stdout}");
    assert!(stdout.contains("ok                 0"), "{stdout}");
}
