//! Simulator validation against closed-form expectations.
//!
//! The paper validates its simulator by checking component behaviour
//! and comparing trends with a second simulator (§3). We do not have
//! `alphasim`, but we can do something stronger for a synthetic
//! substrate: drive the pipeline with microbenchmarks whose steady-state
//! CPI has a *closed form*, and assert the model lands on it.

use ppm::sim::{Instr, Op, Processor, SimConfig};

fn loop_pc(i: u64) -> u64 {
    0x1000 + (i % 512) * 4
}

fn cpi(config: SimConfig, trace: impl Iterator<Item = Instr>) -> f64 {
    Processor::new(config).run(trace).cpi()
}

/// Dependence chain of 1-cycle ops: exactly 1 instruction per cycle.
#[test]
fn serial_alu_chain_is_unit_cpi() {
    let got = cpi(
        SimConfig::default(),
        (0..400_000).map(|i| Instr::alu(Op::IntAlu, loop_pc(i), 1, 0)),
    );
    // ~1% slack for the cold-start I-misses on the loop's 32 lines.
    assert!((got - 1.0).abs() < 0.03, "expected 1.0, got {got}");
}

/// Independent ops saturate the width-4 machine: CPI = 1/4.
#[test]
fn independent_alu_saturates_width() {
    let got = cpi(
        SimConfig::default(),
        (0..200_000).map(|i| Instr::alu(Op::IntAlu, loop_pc(i), 0, 0)),
    );
    assert!((got - 0.25).abs() < 0.03, "expected 0.25, got {got}");
}

/// A chain of FP multiplies runs at the FP-multiply latency (4 cycles).
#[test]
fn fp_multiply_chain_runs_at_its_latency() {
    let got = cpi(
        SimConfig::default(),
        (0..50_000).map(|i| Instr::alu(Op::FpMul, loop_pc(i), 1, 0)),
    );
    assert!((got - 4.0).abs() < 0.15, "expected 4.0, got {got}");
}

/// A load-to-load chain hitting in the L1 runs at dl1_lat per load.
#[test]
fn l1_load_chain_runs_at_dl1_latency() {
    for lat in [1u32, 2, 4] {
        let config = SimConfig::builder().dl1_lat(lat).build().unwrap();
        let got = cpi(
            config,
            (0..60_000).map(|i| Instr::load(loop_pc(i), 0x8000 + (i % 64) * 8, 1, 0)),
        );
        let expected = lat as f64;
        assert!(
            (got - expected).abs() < 0.25,
            "dl1_lat={lat}: expected ~{expected}, got {got}"
        );
    }
}

/// A load→ALU→load recurrence: each pair costs dl1_lat + 1 cycles.
#[test]
fn load_use_pairs_cost_latency_plus_one() {
    let config = SimConfig::builder().dl1_lat(2).build().unwrap();
    // load_i depends on alu_{i-1}, which depends on load_{i-1}:
    // the critical path is (dl1_lat + 1) per two instructions.
    let trace = (0..100_000u64).flat_map(|i| {
        [
            Instr::load(loop_pc(2 * i), 0x8000 + (i % 64) * 8, 1, 0),
            Instr::alu(Op::IntAlu, loop_pc(2 * i + 1), 1, 0),
        ]
    });
    let got = cpi(config, trace);
    assert!((got - 1.5).abs() < 0.1, "expected 1.5, got {got}");
}

/// Random branches: CPI ≈ serial work + rate x (front_depth + resolve).
#[test]
fn mispredict_penalty_matches_depth_arithmetic() {
    let mk = |depth: u32| {
        let mut rng = ppm::rng::Rng::seed_from_u64(1);
        let outcomes: Vec<bool> = (0..60_000).map(|_| rng.chance(0.5)).collect();
        let config = SimConfig::builder().pipe_depth(depth).build().unwrap();
        let trace = outcomes
            .into_iter()
            .enumerate()
            .map(|(i, taken)| Instr::branch(loop_pc(i as u64), taken, loop_pc(i as u64 + 7), 0));
        cpi(config, trace)
    };
    let shallow = mk(7); // front depth 3
    let deep = mk(24); // front depth 20
                       // Each mispredict costs (front_depth + c) extra cycles; the rate is
                       // ~0.5, so the CPI difference is ~0.5 x 17 / 1 instruction.
    let diff = deep - shallow;
    assert!(
        (6.5..11.0).contains(&diff),
        "depth 7→24 CPI delta {diff} (shallow {shallow}, deep {deep})"
    );
}

/// Perfectly biased branches cost nothing extra once learned.
#[test]
fn predictable_branches_are_free() {
    let trace = (0..100_000u64).map(|i| {
        // Always-taken branch to the next line: learned immediately.
        Instr::branch(loop_pc(i), true, loop_pc(i + 1), 0)
    });
    let got = cpi(SimConfig::default(), trace);
    assert!(got < 1.4, "predictable branches should be cheap, got {got}");
}

/// Streaming independent loads overlap their misses: throughput is set
/// by the window's memory-level parallelism (latency / lines-in-window)
/// and is bounded below by the bus occupancy — far faster than a
/// dependent chain, far slower than L1 hits.
#[test]
fn streaming_loads_overlap_their_misses() {
    let config = SimConfig::default();
    let line_lat =
        (config.dl1_lat + config.l2_lat + config.fixed.mem_lat + config.fixed.bus_per_line) as f64;
    let lines_in_window = config.rob_size as f64 / 8.0; // 8 loads per line
    let latency_bound = line_lat / lines_in_window; // CPI if window-limited
    let bus_bound = config.fixed.bus_per_line as f64 / 8.0;
    let trace = (0..200_000u64).map(|i| Instr::load(loop_pc(i), i * 8, 0, 0));
    let got = cpi(config, trace);
    assert!(
        got >= bus_bound,
        "faster than the memory bus allows: {got} < {bus_bound}"
    );
    assert!(
        got < 4.0 * latency_bound,
        "overlap missing: {got} vs window bound ~{latency_bound:.2}"
    );
    // And the MLP advantage over a fully serialized chain is large.
    assert!(
        got * 10.0 < line_lat,
        "no MLP: {got} per load vs {line_lat} serial"
    );
}

/// Full DRAM round trip for a dependent chain of missing loads:
/// dl1 + l2 + mem + bus cycles each.
#[test]
fn chained_misses_pay_the_full_memory_latency() {
    let config = SimConfig::default();
    let full =
        (config.dl1_lat + config.l2_lat + config.fixed.mem_lat + config.fixed.bus_per_line) as f64;
    // Each load depends on the previous and touches a fresh line.
    let trace = (0..3_000u64).map(|i| Instr::load(loop_pc(i), i * 64, 1, 0));
    let got = cpi(config, trace);
    assert!(
        (got - full).abs() < full * 0.15,
        "expected ~{full}, got {got}"
    );
}

/// The return-address stack predicts call/return perfectly.
#[test]
fn call_return_pairs_are_predicted() {
    let trace = (0..40_000u64).flat_map(|i| {
        let call_pc = loop_pc(4 * i);
        let fn_pc = 0x9000 + (i % 16) * 64;
        [
            Instr::call(call_pc, fn_pc),
            Instr::alu(Op::IntAlu, fn_pc, 0, 0),
            Instr::ret(fn_pc + 4, call_pc + 4),
            Instr::alu(Op::IntAlu, call_pc + 4, 0, 0),
        ]
    });
    let stats = Processor::new(SimConfig::default()).run(trace);
    assert!(
        stats.mispredict_rate() < 0.01,
        "RAS should nail call/return: rate {}",
        stats.mispredict_rate()
    );
}

/// CPI is monotone in each cache latency parameter on a memory-touching
/// workload.
#[test]
fn latency_parameters_are_monotone() {
    let mk_trace = || {
        (0..60_000u64).map(|i| {
            if i % 3 == 0 {
                Instr::load(loop_pc(i), (i * 2654435761) % (1 << 21), 1, 0)
            } else {
                Instr::alu(Op::IntAlu, loop_pc(i), 1, 0)
            }
        })
    };
    let mut last = 0.0;
    for lat in [5u32, 10, 15, 20] {
        let config = SimConfig::builder().l2_lat(lat).build().unwrap();
        let got = cpi(config, mk_trace());
        assert!(got >= last, "CPI fell when L2 latency rose: {got} < {last}");
        last = got;
    }
}
