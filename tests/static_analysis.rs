//! Integration tests for the static-analysis pair: `ppm lint`
//! (token-local rules) and `ppm analyze` (cross-crate semantic rules).
//! Golden diagnostics on seeded fixtures, one firing per rule, the
//! CLI exit-code contract for both tools, and the self-scan gates
//! asserting this workspace is violation-free under both.

use std::path::{Path, PathBuf};

use ppm::cli::{CliError, Parsed};
use ppm_analyze::analyze_workspace;
use ppm_lint::{lint_source, lint_workspace, Config};
use ppm_obs::Json;

/// A fixture with exactly one violation per rule, at a path where every
/// rule is in scope. `crates/firstorder` is in the deterministic, the
/// numeric, and (as a non-telemetry library crate) the wall-clock,
/// print, and env scopes at once.
const SEEDED: &str = r#"
use std::collections::HashMap;

pub fn broken(x: Option<f64>) -> f64 {
    let m: HashMap<u32, f64> = std::collections::HashMap::new();
    let t = std::time::Instant::now();
    println!("elapsed {:?}", t.elapsed());
    let v = std::env::var("PPM_FIXTURE").unwrap_or_default();
    if x.unwrap() == 0.5 {
        return m.len() as f64 + v.len() as f64;
    }
    panic!("unreachable")
}
"#;

const SEEDED_PATH: &str = "crates/firstorder/src/seeded.rs";

#[test]
fn every_rule_fires_on_the_seeded_fixture() {
    let diags = lint_source(SEEDED_PATH, SEEDED, &Config::empty());
    let mut fired: Vec<&str> = diags.iter().map(|d| d.rule).collect();
    fired.sort_unstable();
    fired.dedup();
    assert_eq!(
        fired,
        vec![
            "env-read",
            "float-eq",
            "iteration-order",
            "panic-path",
            "print-in-lib",
            "wall-clock",
        ],
        "full diagnostics: {diags:#?}"
    );
}

#[test]
fn seeded_fixture_diagnostics_are_golden() {
    let diags = lint_source(SEEDED_PATH, SEEDED, &Config::empty());
    let rendered: Vec<String> = diags
        .iter()
        .map(|d| format!("{}:{}:{} {}", d.path, d.line, d.col, d.rule))
        .collect();
    assert_eq!(
        rendered,
        vec![
            "crates/firstorder/src/seeded.rs:2:23 iteration-order",
            "crates/firstorder/src/seeded.rs:5:12 iteration-order",
            "crates/firstorder/src/seeded.rs:5:50 iteration-order",
            "crates/firstorder/src/seeded.rs:6:24 wall-clock",
            "crates/firstorder/src/seeded.rs:7:5 print-in-lib",
            "crates/firstorder/src/seeded.rs:8:18 env-read",
            "crates/firstorder/src/seeded.rs:9:19 float-eq",
            "crates/firstorder/src/seeded.rs:9:10 panic-path",
            "crates/firstorder/src/seeded.rs:12:5 panic-path",
        ],
        "full diagnostics: {diags:#?}"
    );
    // Diagnostics arrive in (line, rule, col) order and carry
    // actionable messages.
    assert!(
        diags[0].message.contains("BTreeMap"),
        "{}",
        diags[0].message
    );
}

#[test]
fn test_code_in_the_fixture_is_exempt() {
    let in_test = format!(
        "#[cfg(test)]\nmod tests {{\n{}\n}}\n",
        SEEDED.replace("pub fn", "fn")
    );
    let diags = lint_source(SEEDED_PATH, &in_test, &Config::empty());
    assert!(diags.is_empty(), "{diags:#?}");
}

fn write(root: &Path, rel: &str, text: &str) {
    let full = root.join(rel);
    std::fs::create_dir_all(full.parent().expect("parent")).expect("mkdir");
    std::fs::write(full, text).expect("write fixture");
}

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ppm-lint-it-{tag}-{}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clean temp root");
    }
    std::fs::create_dir_all(&dir).expect("mkdir temp root");
    dir
}

fn run_cli(args: &[&str]) -> (String, Result<(), CliError>) {
    let parsed = Parsed::parse(args.iter().map(|s| s.to_string())).expect("args parse");
    let mut out = String::new();
    let result = ppm::cli::run(&parsed, &mut out);
    (out, result)
}

#[test]
fn cli_lint_exits_6_on_a_seeded_violation_and_0_when_fixed() {
    let root = temp_root("exit");
    write(&root, SEEDED_PATH, SEEDED);
    let root_s = root.to_string_lossy().into_owned();

    let (out, result) = run_cli(&["lint", "--root", &root_s]);
    let err = result.expect_err("violations must fail the command");
    match &err {
        CliError::Lint(n) => assert_eq!(*n, 9, "{out}"),
        other => panic!("expected CliError::Lint, got {other:?}"),
    }
    assert_eq!(err.exit_code(), 6);
    assert!(out.contains("panic-path"), "{out}");

    // The same tree with the violation file replaced is clean.
    write(&root, SEEDED_PATH, "pub fn fine() -> u32 { 7 }\n");
    let (out, result) = run_cli(&["lint", "--root", &root_s]);
    result.expect("clean tree must pass");
    assert!(out.contains("0 finding(s)"), "{out}");
    std::fs::remove_dir_all(&root).expect("cleanup");
}

#[test]
fn cli_lint_json_is_parseable_and_complete() {
    let root = temp_root("json");
    write(&root, SEEDED_PATH, SEEDED);
    let root_s = root.to_string_lossy().into_owned();

    let (out, result) = run_cli(&["lint", "--root", &root_s, "--format", "json"]);
    assert_eq!(result.expect_err("seeded violations").exit_code(), 6);
    let json = Json::parse(out.trim()).expect("valid JSON on stdout");
    assert_eq!(
        json.get("schema").and_then(Json::as_str),
        Some("ppm-lint v1")
    );
    assert_eq!(json.get("clean"), Some(&Json::Bool(false)));
    assert_eq!(json.get("files_scanned").and_then(Json::as_i64), Some(1));
    let diags = match json.get("diagnostics") {
        Some(Json::Arr(items)) => items,
        other => panic!("diagnostics not an array: {other:?}"),
    };
    assert_eq!(diags.len(), 9);
    for d in diags {
        for key in ["rule", "path", "line", "col", "message"] {
            assert!(d.get(key).is_some(), "diagnostic missing {key}: {d:?}");
        }
    }
    std::fs::remove_dir_all(&root).expect("cleanup");
}

#[test]
fn cli_lint_rejects_unknown_format_and_bad_conf() {
    let root = temp_root("badargs");
    write(&root, "crates/core/src/lib.rs", "pub fn ok() {}\n");
    let root_s = root.to_string_lossy().into_owned();

    let (_, result) = run_cli(&["lint", "--root", &root_s, "--format", "xml"]);
    assert_eq!(result.expect_err("unknown format").exit_code(), 2);

    write(&root, "bad.conf", "allow not-a-rule something\n");
    let conf = root.join("bad.conf").to_string_lossy().into_owned();
    let (_, result) = run_cli(&["lint", "--root", &root_s, "--conf", &conf]);
    assert_eq!(result.expect_err("bad conf").exit_code(), 4);
    std::fs::remove_dir_all(&root).expect("cleanup");
}

/// The gate this whole PR exists for: the workspace itself has zero
/// findings under its checked-in allowlist.
#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let conf = Config::load(&root.join("scripts").join("lint.conf")).expect("lint.conf loads");
    let report = lint_workspace(root, &conf).expect("workspace scan");
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned: {}",
        report.files_scanned
    );
    let rendered = report.render_human();
    assert!(
        report.is_clean(),
        "workspace has lint findings:\n{rendered}"
    );
}

// ---------------------------------------------------------------------
// `ppm analyze`: the cross-crate semantic pass.
// ---------------------------------------------------------------------

/// One seeded violation per analyze rule: `(rule, path, source)`.
/// Each source is minimal enough to trip exactly its own rule.
const ANALYZE_SEEDS: &[(&str, &str, &str)] = &[
    (
        "lock-order",
        "crates/serve/src/seeded_locks.rs",
        r#"pub fn double_lock(s: &S) {
    let g = s.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let h = s.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let _ = (g, h);
}
"#,
    ),
    (
        "atomic-ordering",
        "crates/serve/src/seeded_atomics.rs",
        r#"pub fn publish(s: &S) {
    s.flag.store(1, Ordering::SeqCst);
}
"#,
    ),
    (
        "panic-reachability",
        "crates/serve/src/seeded_panics.rs",
        r#"pub fn start() {
    std::thread::spawn(move || {
        let v: Option<u32> = None;
        let _ = v.unwrap();
    });
}
"#,
    ),
    (
        "wire-format",
        "crates/serve/src/seeded_wire.rs",
        r#"pub fn schema() -> &'static str {
    "ppm-bogus v9"
}
"#,
    ),
    (
        "exit-code",
        "src/cli/commands.rs",
        r#"pub enum CliError { Args(String), Sim(String), Lint(usize) }
impl CliError {
    pub fn exit_code(&self) -> u8 {
        match self {
            CliError::Args(_) => 2,
            CliError::Sim(_) => 3,
            CliError::Lint(_) => 6,
        }
    }
}
"#,
    ),
];

/// The usage text companion for the exit-code seed: documents a ghost
/// code 9 that no variant produces.
const ANALYZE_USAGE: &str = r#"pub const USAGE: &str = "ppm <command>

EXIT CODES:
  0 success    2 usage
  3 simulation 6 lint
  9 ghost

";
"#;

fn write_analyze_seed(root: &Path, rule: &str) {
    let (_, rel, src) = ANALYZE_SEEDS
        .iter()
        .find(|(r, _, _)| *r == rule)
        .expect("known rule");
    write(root, rel, src);
    if rule == "exit-code" {
        write(root, "src/cli/mod.rs", ANALYZE_USAGE);
    }
}

#[test]
fn cli_analyze_exits_6_on_each_seeded_violation() {
    for (rule, _, _) in ANALYZE_SEEDS {
        let root = temp_root(&format!("an-{rule}"));
        write_analyze_seed(&root, rule);
        let root_s = root.to_string_lossy().into_owned();

        let (out, result) = run_cli(&["analyze", "--root", &root_s]);
        let err = result.expect_err("seeded violation must fail the command");
        match &err {
            CliError::Analyze(n) => assert!(*n > 0, "{rule}: {out}"),
            other => panic!("{rule}: expected CliError::Analyze, got {other:?}"),
        }
        assert_eq!(err.exit_code(), 6, "{rule}");
        assert!(out.contains(rule), "{rule} not named in output:\n{out}");

        // Scoping to a different rule silences the finding (exit 0).
        let other_rule = if *rule == "wire-format" {
            "lock-order"
        } else {
            "wire-format"
        };
        let (out, result) = run_cli(&["analyze", "--root", &root_s, "--rule", other_rule]);
        result
            .unwrap_or_else(|e| panic!("{rule}: --rule {other_rule} must pass, got {e:?}\n{out}"));
        std::fs::remove_dir_all(&root).expect("cleanup");
    }
}

#[test]
fn analyze_seeded_tree_diagnostics_are_golden() {
    let root = temp_root("an-golden");
    for (rule, _, _) in ANALYZE_SEEDS {
        write_analyze_seed(&root, rule);
    }
    let report = analyze_workspace(&root, &Config::empty()).expect("analyze");
    let rendered: Vec<String> = report
        .diagnostics
        .iter()
        .map(|d| format!("{}:{}:{} {}", d.path, d.line, d.col, d.rule))
        .collect();
    assert_eq!(
        rendered,
        vec![
            "crates/serve/src/seeded_atomics.rs:2:12 atomic-ordering",
            "crates/serve/src/seeded_locks.rs:3:21 lock-order",
            "crates/serve/src/seeded_panics.rs:4:19 panic-reachability",
            "crates/serve/src/seeded_wire.rs:2:5 wire-format",
            "src/cli/mod.rs:3:1 exit-code",
        ],
        "full diagnostics: {:#?}",
        report.diagnostics
    );
    std::fs::remove_dir_all(&root).expect("cleanup");
}

#[test]
fn cli_analyze_json_is_parseable_and_rejects_unknown_rule() {
    let root = temp_root("an-json");
    write_analyze_seed(&root, "wire-format");
    let root_s = root.to_string_lossy().into_owned();

    let (out, result) = run_cli(&["analyze", "--root", &root_s, "--format", "json"]);
    assert_eq!(result.expect_err("seeded violation").exit_code(), 6);
    let json = Json::parse(out.trim()).expect("valid JSON on stdout");
    assert_eq!(
        json.get("schema").and_then(Json::as_str),
        Some("ppm-analyze v1")
    );
    assert_eq!(json.get("clean"), Some(&Json::Bool(false)));
    let diags = match json.get("diagnostics") {
        Some(Json::Arr(items)) => items,
        other => panic!("diagnostics not an array: {other:?}"),
    };
    assert_eq!(diags.len(), 1, "{out}");
    for d in diags {
        for key in ["rule", "path", "line", "col", "message"] {
            assert!(d.get(key).is_some(), "diagnostic missing {key}: {d:?}");
        }
    }

    let (_, result) = run_cli(&["analyze", "--root", &root_s, "--rule", "nonsense"]);
    assert_eq!(result.expect_err("unknown rule").exit_code(), 2);
    std::fs::remove_dir_all(&root).expect("cleanup");
}

/// The analyze counterpart of `workspace_is_lint_clean`: the workspace
/// itself has zero semantic findings under its checked-in allowlist.
#[test]
fn workspace_is_analyze_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let conf = Config::load(&root.join("scripts").join("lint.conf")).expect("lint.conf loads");
    let report = analyze_workspace(root, &conf).expect("workspace scan");
    assert!(
        report.files_scanned > 100,
        "suspiciously few files scanned: {}",
        report.files_scanned
    );
    let rendered = report.render_human();
    assert!(
        report.is_clean(),
        "workspace has analyze findings:\n{rendered}"
    );
}
