//! Golden tests pinning every wire format in the registry
//! (`crates/analyze/src/wire.rs`, `KNOWN_FORMATS`).
//!
//! Each test drives the real emitter where one is reachable from a unit
//! test (reports, rings, checkpoints) and a canonical body fixture where
//! the emitter is buried in a server loop (`/predict`, `/statusz`), then
//! compares the schema field against the literal version string with
//! `==`. That comparison is deliberate: `ppm analyze` requires every
//! registered format to have both a test pin and a parse/validation
//! site, and these assertions are exactly that contract. Bumping a
//! version string without updating the registry, the parser, and this
//! file fails `ppm analyze` and these tests at the same time.

use ppm_obs::Json;

/// Parses `text` as JSON and returns its top-level `"schema"` string.
fn schema_of(text: &str) -> Option<String> {
    let doc = Json::parse(text).ok()?;
    doc.get("schema").and_then(Json::as_str).map(str::to_string)
}

#[test]
fn analyze_report_schema_is_pinned() {
    let report = ppm_analyze::Report {
        files_scanned: 3,
        diagnostics: Vec::new(),
    };
    let text = report.render_json();
    assert!(
        schema_of(&text).as_deref() == Some("ppm-analyze v1"),
        "{text}"
    );
    assert!(ppm_analyze::SCHEMA == "ppm-analyze v1");
}

#[test]
fn bench_record_schema_is_pinned() {
    let record = ppm_obs::BenchRecord {
        bench: "wire_golden".to_string(),
        unit: "ms".to_string(),
        wall_ms: 12.5,
        source_run: "test-run".to_string(),
        created_unix_ms: 0,
    };
    let text = record.to_json().dump();
    assert!(
        schema_of(&text).as_deref() == Some("ppm-bench v1"),
        "{text}"
    );
    assert!(ppm_obs::BENCH_SCHEMA == "ppm-bench v1");
}

#[test]
fn buildz_document_schema_is_pinned() {
    let text = ppm_live::render_buildz(&[]);
    assert!(
        schema_of(&text).as_deref() == Some("ppm-buildz v1"),
        "{text}"
    );
}

#[test]
fn checkpoint_header_is_pinned() {
    let mut journal = ppm_core::Checkpoint::create(
        std::env::temp_dir().join("ppm-wire-golden.ckpt"),
        &[("seed".to_string(), "7".to_string())],
    );
    journal.record(&[1.0, 2.0], 3.5);
    let text = journal.to_text();
    assert!(text.lines().next() == Some("ppm-checkpoint v1"), "{text}");
}

#[test]
fn eventz_document_schema_is_pinned() {
    let text = ppm_telemetry::EventRing::new(4).render_json();
    assert!(
        schema_of(&text).as_deref() == Some("ppm-eventz v1"),
        "{text}"
    );
}

#[test]
fn ledger_schema_constant_is_pinned() {
    assert!(ppm_obs::ledger::LEDGER_SCHEMA == "ppm-ledger v1");
}

#[test]
fn lint_report_schema_is_pinned() {
    let text = ppm_lint::Report::default().render_json();
    assert!(schema_of(&text).as_deref() == Some("ppm-lint v1"), "{text}");
}

#[test]
fn loadtest_report_schema_is_pinned() {
    let report = ppm_serve::LoadtestReport {
        sent: 10,
        ok: 8,
        degraded: 1,
        shed: 1,
        deadline_exceeded: 0,
        errors: 1,
        p50_ms: 1.0,
        p95_ms: 2.0,
        p99_ms: 3.0,
        mean_ms: 1.5,
        refusal_p50_ms: 0.2,
        refusal_p99_ms: 0.4,
        refusal_mean_ms: 0.3,
        wall_ms: 100.0,
        rps: 100.0,
        trace_check: None,
    };
    let text = report.to_json().dump();
    assert!(
        schema_of(&text).as_deref() == Some("ppm-loadtest v1"),
        "{text}"
    );
}

/// A minimal but structurally complete `ppm-ledger v1` run document —
/// the shape `ppm report` compares.
fn ledger_fixture() -> Json {
    let text = r#"{
      "header": {
        "schema": "ppm-ledger v1",
        "run_id": "wire-golden",
        "created_unix_ms": 0,
        "timings": {
          "total_wall_us": 100000,
          "total_cpu_us": null,
          "stages": [
            {"name": "stage.rbf_train", "wall_us": 100000, "cpu_us": null}
          ]
        }
      },
      "body": {
        "schema": "ppm-ledger v1",
        "command": "build",
        "args": {"--seed": "7"},
        "env": {},
        "metrics": [
          {"kind": "counter", "name": "sim.batch_points", "value": 40}
        ],
        "diagnostics": {
          "holdout": {"mean_pct": 2.0, "max_pct": 6.0},
          "regions": [
            {"leaf": 0, "count": 10, "mean_abs_pct": 1.5, "max_abs_pct": 4.0}
          ],
          "aicc": -12.0
        }
      }
    }"#;
    Json::parse(text).expect("ledger fixture parses")
}

#[test]
fn regression_report_schema_is_pinned() {
    let doc = ledger_fixture();
    let report = ppm_obs::compare(&doc, &doc, &ppm_obs::Thresholds::default())
        .expect("self-compare succeeds");
    let text = report.to_json().dump();
    assert!(
        schema_of(&text).as_deref() == Some("ppm-report v1"),
        "{text}"
    );
}

#[test]
fn predict_body_schema_is_pinned() {
    // The /predict emitter lives inside the serve request loop; this is
    // the canonical body shape it produces, validated consumer-side the
    // same way `ppm loadtest` classifies responses.
    let body = r#"{"schema":"ppm-serve v1","benchmark":"gcc","metric":"ipc",
                   "prediction":1.25,"model_version":3,"degraded":false,
                   "eval_us":42}"#;
    assert!(schema_of(body).as_deref() == Some("ppm-serve v1"), "{body}");
}

#[test]
fn statusz_body_schema_is_pinned() {
    // Same situation as /predict: the emitter is in the server loop, so
    // the golden pins the canonical body shape consumer-side.
    let body = r#"{"schema":"ppm-statusz v1","model_version":3,
                   "benchmark":"gcc","metric":"ipc","state":"serving",
                   "queued":0,"workers":4}"#;
    assert!(
        schema_of(body).as_deref() == Some("ppm-statusz v1"),
        "{body}"
    );
}

#[test]
fn tracez_document_schema_is_pinned() {
    let ring = ppm_serve::TraceRing::new(ppm_serve::TraceConfig::default());
    let text = ring.render_tracez(&ppm_serve::TraceFilter::default());
    assert!(
        schema_of(&text).as_deref() == Some("ppm-tracez v1"),
        "{text}"
    );
    assert!(ppm_serve::TRACEZ_SCHEMA == "ppm-tracez v1");
    let disabled = ppm_serve::trace::render_tracez_disabled();
    assert!(
        schema_of(&disabled).as_deref() == Some("ppm-tracez v1"),
        "{disabled}"
    );
}
